//! Interned-state exploration engine for the exact slot-sharing checker.
//!
//! [`SlotVerifyEngine`] answers the same question as [`crate::checker::verify`]
//! (retained as the semantic oracle, re-exported as [`crate::reference`]) but
//! is built for throughput, following the engine/oracle pattern of
//! `cps-core::engine`, `cps-ta::ZoneGraphExplorer` and
//! `cps-sched::BatchCosimEngine`:
//!
//! * **Packed state encoding** — each application's location (`Steady`,
//!   `Waiting`, `Using`, `Cooldown`, `Exhausted`, plus the bounded-mode
//!   instance counter) is packed into one integer code; a system state is a
//!   fixed-width word vector stored in a flat arena (`u16` words when every
//!   application's code space fits, `u32` otherwise), instead of the oracle's
//!   two heap-allocated `Vec`s per state.
//! * **Incremental Zobrist hashing** — each application's packed code owns a
//!   Zobrist key per `(slot, code)` pair ([`cps_intern::ZobristKeys`]); a
//!   state's 64-bit fingerprint is the XOR of one key per slot. Successors
//!   are hashed by XOR-updating the parent's cached fingerprint over the
//!   slots that actually changed (stepping *and* the symmetry sort below),
//!   never by re-mixing the whole word vector.
//! * **Cached-hash interning** — states are deduplicated through a
//!   [`cps_intern::CachedHashIndex`] that stores each interned state's
//!   fingerprint next to its dense `u32` id (and alongside [`NodeMeta`] for
//!   O(1) parent-hash lookup). Probes compare the cached hash before any
//!   arena words, growth re-buckets from cached hashes instead of re-hashing
//!   the arena, and exact word equality stays the final probe test — hash
//!   collisions cost a compare, never a wrong verdict.
//! * **Bitmask disturbance enumeration** — the per-sample disturbance choices
//!   are enumerated as a mixed-radix counter over groups of interchangeable
//!   applications and recorded as a `u32` position bitmask; the oracle
//!   materialises a `Vec<Vec<usize>>` of subsets per popped state.
//! * **In-place stepping** — successors are computed on reusable scratch
//!   buffers (decode, disturb, schedule, advance, encode); steady-state
//!   exploration performs no per-successor heap allocation.
//! * **Compact parent links** — each stored state keeps only a `u32` parent
//!   id and the disturbance bitmask that produced it; counterexamples are
//!   reconstructed by replaying that chain.
//! * **Symmetry reduction** — within every maximal run of *adjacent identical
//!   profiles* the per-application codes are kept sorted, so states that
//!   differ only by a permutation of interchangeable applications intern to
//!   the same id, and disturbance choices pick *how many* applications of an
//!   interchangeable group to disturb instead of *which*. Contention-heavy
//!   symmetric fleets — the models the paper's headline verification time is
//!   about — collapse their permutation orbits to single representatives.
//!
//! Restricting the reduction to runs of **adjacent** identical profiles keeps
//! it sound with respect to the scheduler's lowest-index tie-break: permuting
//! interchangeable applications inside one contiguous run never changes which
//! *run* wins a cross-run laxity tie (the tied codes inside a run are equal,
//! and every index of one run compares the same way against every index of
//! another), so the quotient transition system is bisimilar to the concrete
//! one and verdicts are preserved. Witnesses are mapped back to concrete
//! application indices by replaying the parent chain while tracking the
//! canonicalisation permutation, and are checked against
//! [`crate::witness::validate_witness`] in the test suite.
//!
//! `states_explored` counts states popped and expanded, with the same budget
//! semantics as the oracle; on models without adjacent identical profiles the
//! engine explores the oracle's graph in the oracle's order and reports the
//! identical count.
//!
//! # Parallel exploration
//!
//! On a multi-thread [`cps_par::Pool`] (see [`SlotVerifyEngine::with_pool`]
//! and the `CPS_THREADS` environment variable) the engine switches from the
//! pop-one-state loop to a **level-batched BFS with deterministic sharded
//! reduction**:
//!
//! 1. the pending frontier `[head, len)` is scanned once to lay out each
//!    state's disturbance-choice groups and mixed-radix choice count;
//! 2. the flat choice space of the whole frontier is split into contiguous
//!    shards, one per worker — sharding by disturbance-choice index, so a
//!    single hot state's enumeration splits across threads just like a wide
//!    frontier does; each worker steps, canonicalises and incrementally
//!    hashes its successors into private staging buffers (no shared state);
//! 3. a serial merge walks the shards **in choice order** — re-establishing
//!    the exact serial visitation order before any id is assigned — and
//!    replays interning, budget accounting and miss handling with the same
//!    single-threaded index the serial loop uses.
//!
//! Because ids, hashes, stats counters and the first-miss choice are all
//! decided by the in-order merge, verdicts, witnesses, interned ids and
//! [`VerifyStats`] are **bit-identical under any thread count** (asserted by
//! the cross-thread-count property tests and on every `bench_par` run). The
//! staging buffers make the parallel path's memory transiently proportional
//! to the frontier's successor count, which is why `threads == 1` keeps the
//! intern-as-you-go serial loop unchanged.

use cps_core::AppTimingProfile;
use cps_intern::{CachedHashIndex, ZobristKeys};

use crate::cancel::CancelToken;
use crate::checker::{VerificationConfig, VerificationOutcome};
use crate::witness::{TraceEvent, Witness};
use crate::{SlotSharingModel, VerifyError};

const NO_PARENT: u32 = u32::MAX;
/// Disturbance choices are recorded as `u32` position bitmasks.
const MAX_APPS: usize = 32;
/// Minimum disturbance choices per shard before another worker spawns:
/// levels below the grain run on fewer threads (same merged stream, less
/// spawn overhead).
const PAR_GRAIN: u64 = 128;

/// Hash/probe work counters of a [`SlotVerifyEngine`], cumulative over the
/// engine's lifetime (benches and the mapping cascade report deltas between
/// snapshots via [`VerifyStats::since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyStats {
    /// Intern probes against the state index (one per generated successor
    /// plus one per initial state).
    pub intern_probes: usize,
    /// Probes that resolved to an already-interned state (dedup hits).
    pub hash_hits: usize,
    /// Occupied buckets skipped on a cached-hash mismatch alone, without
    /// comparing arena words.
    pub hash_skips: usize,
    /// Full word comparisons performed (cached hashes matched first).
    pub deep_compares: usize,
    /// Index growths; each re-buckets from cached hashes.
    pub rehashes: usize,
    /// Entries re-bucketed during growths without re-hashing their words.
    pub rehashed_entries: usize,
    /// Per-slot XOR updates performed by the incremental Zobrist hashing —
    /// the words the engine actually hashed.
    pub hash_slot_updates: usize,
    /// Words a non-incremental scheme would have hashed for the same runs:
    /// the full state width per probe plus the whole arena per growth.
    pub full_hash_words: usize,
}

impl VerifyStats {
    /// Component-wise difference `self − earlier` between two snapshots of a
    /// long-lived engine.
    pub fn since(&self, earlier: &VerifyStats) -> VerifyStats {
        VerifyStats {
            intern_probes: self.intern_probes - earlier.intern_probes,
            hash_hits: self.hash_hits - earlier.hash_hits,
            hash_skips: self.hash_skips - earlier.hash_skips,
            deep_compares: self.deep_compares - earlier.deep_compares,
            rehashes: self.rehashes - earlier.rehashes,
            rehashed_entries: self.rehashed_entries - earlier.rehashed_entries,
            hash_slot_updates: self.hash_slot_updates - earlier.hash_slot_updates,
            full_hash_words: self.full_hash_words - earlier.full_hash_words,
        }
    }

    /// Component-wise sum (the engine keeps one counter set per word width;
    /// incremental admission reports accumulate per-operation deltas).
    pub fn plus(&self, other: &VerifyStats) -> VerifyStats {
        VerifyStats {
            intern_probes: self.intern_probes + other.intern_probes,
            hash_hits: self.hash_hits + other.hash_hits,
            hash_skips: self.hash_skips + other.hash_skips,
            deep_compares: self.deep_compares + other.deep_compares,
            rehashes: self.rehashes + other.rehashes,
            rehashed_entries: self.rehashed_entries + other.rehashed_entries,
            hash_slot_updates: self.hash_slot_updates + other.hash_slot_updates,
            full_hash_words: self.full_hash_words + other.full_hash_words,
        }
    }

    /// How many times more hash work the previous full-rehash scheme would
    /// have done: `full_hash_words / hash_slot_updates`.
    pub fn hash_work_collapse(&self) -> f64 {
        self.full_hash_words as f64 / (self.hash_slot_updates.max(1)) as f64
    }
}

/// Fixed-width storage for one application's packed cell code. `Send + Sync`
/// lets shard workers read the arena and stage successor words.
trait StateWord: Copy + Eq + Ord + std::fmt::Debug + Default + Send + Sync {
    /// Exclusive upper bound on the code values the word can represent.
    const LIMIT: u64;

    fn pack(code: u32) -> Self;
    fn unpack(self) -> u32;
}

impl StateWord for u16 {
    const LIMIT: u64 = 1 << 16;

    fn pack(code: u32) -> Self {
        debug_assert!(u64::from(code) < Self::LIMIT);
        code as u16
    }

    fn unpack(self) -> u32 {
        u32::from(self)
    }
}

impl StateWord for u32 {
    const LIMIT: u64 = 1 << 32;

    fn pack(code: u32) -> Self {
        code
    }

    fn unpack(self) -> u32 {
        self
    }
}

/// The per-application location, decoded for stepping. Mirrors the oracle's
/// `Cell` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    Steady,
    Waiting { waited: u32 },
    Using { wait_at_grant: u32, received: u32 },
    Cooldown { since: u32 },
    Exhausted,
}

/// Per-application scheduling parameters, extracted once per model.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AppParams {
    max_wait: u32,
    min_inter_arrival: u32,
    t_dw_min: Vec<u32>,
    t_dw_plus: Vec<u32>,
}

/// The packed-code layout of one application.
///
/// Cell codes are laid out contiguously — `0` is `Steady`, then the waiting
/// counter, the `(wait_at_grant, received)` grid, the cooldown counter and
/// finally `Exhausted` — and the bounded-mode instance counter multiplies the
/// whole cell space. Every reachable field value fits its range by the step
/// semantics (waits are cut off by the deadline check, received by the useful
/// dwell, cooldowns by the inter-arrival time).
#[derive(Debug, Clone, Copy)]
struct Encoding {
    using_base: u32,
    cooldown_base: u32,
    exhausted_code: u32,
    cell_space: u32,
    recv_stride: u32,
}

impl Encoding {
    fn encode(&self, cell: Cell, used: u32) -> u32 {
        let cell_code = match cell {
            Cell::Steady => 0,
            Cell::Waiting { waited } => 1 + waited,
            Cell::Using {
                wait_at_grant,
                received,
            } => self.using_base + wait_at_grant * self.recv_stride + received,
            Cell::Cooldown { since } => self.cooldown_base + since,
            Cell::Exhausted => self.exhausted_code,
        };
        debug_assert!(cell_code < self.cell_space);
        used * self.cell_space + cell_code
    }

    fn decode(&self, code: u32) -> (Cell, u32) {
        let used = code / self.cell_space;
        let cell_code = code % self.cell_space;
        let cell = if cell_code == 0 {
            Cell::Steady
        } else if cell_code < self.using_base {
            Cell::Waiting {
                waited: cell_code - 1,
            }
        } else if cell_code < self.cooldown_base {
            let grid = cell_code - self.using_base;
            Cell::Using {
                wait_at_grant: grid / self.recv_stride,
                received: grid % self.recv_stride,
            }
        } else if cell_code < self.exhausted_code {
            Cell::Cooldown {
                since: cell_code - self.cooldown_base,
            }
        } else {
            Cell::Exhausted
        };
        (cell, used)
    }
}

/// Everything the exploration needs about one model + configuration pair.
struct ModelCtx {
    params: Vec<AppParams>,
    enc: Vec<Encoding>,
    /// Maximal runs of adjacent identical profiles, covering `0..n` in order;
    /// runs of length ≥ 2 are the symmetry classes the canonicalisation
    /// sorts within.
    runs: Vec<(usize, usize)>,
    bound: Option<u32>,
    budget: usize,
    n: usize,
    /// The widest per-application code space; selects the word width.
    max_code_space: u64,
    /// Zobrist key material, one key per `(application slot, packed code)`.
    keys: ZobristKeys,
    /// Cooperative cancellation, polled at every budget checkpoint.
    cancel: Option<CancelToken>,
}

impl ModelCtx {
    fn new(model: &SlotSharingModel, config: &VerificationConfig) -> Result<Self, VerifyError> {
        Self::from_profiles(model.profiles().iter(), config)
    }

    /// Builds the context straight from borrowed profiles — the hook behind
    /// [`SlotVerifyEngine::verify_selected`], which lets callers (the mapping
    /// cascade) probe sub-models without cloning any [`AppTimingProfile`].
    fn from_profiles<'a>(
        profiles: impl ExactSizeIterator<Item = &'a AppTimingProfile>,
        config: &VerificationConfig,
    ) -> Result<Self, VerifyError> {
        let n = profiles.len();
        if n > MAX_APPS {
            return Err(VerifyError::InvalidConfig {
                reason: format!("the engine encodes disturbance choices as 32-bit masks; {n} applications exceed the supported {MAX_APPS}"),
            });
        }
        let bound = match config.max_disturbances_per_app {
            None => None,
            Some(b) => Some(u32::try_from(b).map_err(|_| VerifyError::InvalidConfig {
                reason: format!("disturbance bound {b} is too large to encode"),
            })?),
        };

        let mut params = Vec::with_capacity(n);
        let mut enc = Vec::with_capacity(n);
        let mut code_spaces = Vec::with_capacity(n);
        let mut max_code_space = 0u64;
        for p in profiles {
            let max_wait = p.max_wait() as u64;
            let r = p.min_inter_arrival() as u64;
            let t_dw_plus: Vec<u32> = (0..=p.max_wait())
                .map(|w| p.t_dw_plus(w).expect("wait within range") as u32)
                .collect();
            let t_dw_min: Vec<u32> = (0..=p.max_wait())
                .map(|w| p.t_dw_min(w).expect("wait within range") as u32)
                .collect();
            let max_plus = u64::from(t_dw_plus.iter().copied().max().unwrap_or(0));

            let using_base = 1 + (max_wait + 2);
            let recv_stride = max_plus + 1;
            let cooldown_base = using_base + (max_wait + 1) * recv_stride;
            let exhausted_code = cooldown_base + r;
            let cell_space = exhausted_code + 1;
            // Strictly below the u32 limit: `cell_space` itself is stored as
            // a u32, so a code space of exactly 2^32 would truncate it.
            let code_space = cell_space
                .checked_mul(u64::from(bound.unwrap_or(0)) + 1)
                .filter(|&s| s < <u32 as StateWord>::LIMIT)
                .ok_or_else(|| VerifyError::InvalidConfig {
                    reason: format!("profile '{}' needs more than 2^32 packed codes", p.name()),
                })?;
            max_code_space = max_code_space.max(code_space);
            code_spaces.push(code_space);

            params.push(AppParams {
                max_wait: max_wait as u32,
                min_inter_arrival: r as u32,
                t_dw_min,
                t_dw_plus,
            });
            enc.push(Encoding {
                using_base: using_base as u32,
                cooldown_base: cooldown_base as u32,
                exhausted_code: exhausted_code as u32,
                cell_space: cell_space as u32,
                recv_stride: recv_stride as u32,
            });
        }

        // `AppParams` holds exactly the fields `profiles_interchangeable`
        // compares, so run detection on the extracted parameters matches the
        // profile-level predicate.
        let mut runs = Vec::new();
        let mut start = 0usize;
        for i in 1..=n {
            if i == n || params[i] != params[start] {
                runs.push((start, i));
                start = i;
            }
        }

        Ok(ModelCtx {
            params,
            enc,
            runs,
            bound,
            budget: config.state_budget,
            n,
            max_code_space,
            keys: ZobristKeys::new(code_spaces),
            cancel: None,
        })
    }

    fn eligible(&self, cell: Cell, used: u32) -> bool {
        matches!(cell, Cell::Steady) && self.bound.is_none_or(|b| used < b)
    }

    /// Polled wherever the state budget is charged; `true` asks the
    /// exploration to stop with [`VerifyError::Canceled`].
    fn is_canceled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_canceled)
    }
}

/// `true` when the engine treats the two profiles as interchangeable:
/// identical maximum wait, minimum inter-arrival time and dwell-time arrays
/// over `0..=max_wait` — exactly the equality the symmetry runs are built
/// from (the settling columns of the dwell table and the pure-mode settling
/// times play no role in the scheduling semantics).
pub fn profiles_interchangeable(a: &AppTimingProfile, b: &AppTimingProfile) -> bool {
    a.max_wait() == b.max_wait()
        && a.min_inter_arrival() == b.min_inter_arrival()
        && (0..=a.max_wait())
            .all(|w| a.t_dw_min(w) == b.t_dw_min(w) && a.t_dw_plus(w) == b.t_dw_plus(w))
}

/// `true` when two adjacent applications of the model are interchangeable —
/// the condition under which [`SlotVerifyEngine`]'s symmetry reduction can
/// merge states, making its popped-state count a lower bound on the
/// oracle's instead of an equality.
pub fn has_interchangeable_neighbors(model: &SlotSharingModel) -> bool {
    model
        .profiles()
        .windows(2)
        .any(|w| profiles_interchangeable(&w[0], &w[1]))
}

/// Compact per-state record: parent id and the disturbance bitmask (in the
/// parent's canonical coordinates) that produced the state.
#[derive(Debug, Clone, Copy)]
struct NodeMeta {
    parent: u32,
    mask: u32,
}

enum StepOutcome {
    Ok,
    Miss { app: usize },
}

/// One sample of the deterministic semantics, applied in place *after* the
/// caller has sensed the chosen disturbances: deadline check, occupant
/// release, laxity-EDF grant/preemption, time advance. Mirrors the oracle's
/// `Explorer::step` exactly.
fn step_in_place(
    params: &[AppParams],
    bound: Option<u32>,
    cells: &mut [Cell],
    used: &[u32],
) -> StepOutcome {
    for (app, cell) in cells.iter().enumerate() {
        if let Cell::Waiting { waited } = cell {
            if *waited > params[app].max_wait {
                return StepOutcome::Miss { app };
            }
        }
    }

    let mut occupant = cells.iter().position(|c| matches!(c, Cell::Using { .. }));
    if let Some(app) = occupant {
        if let Cell::Using {
            wait_at_grant,
            received,
        } = cells[app]
        {
            if received >= params[app].t_dw_plus[wait_at_grant as usize] {
                cells[app] = Cell::Cooldown {
                    since: wait_at_grant + received,
                };
                occupant = None;
            }
        }
    }

    let mut best: Option<(u32, usize)> = None;
    for (i, cell) in cells.iter().enumerate() {
        if let Cell::Waiting { waited } = *cell {
            let laxity = params[i].max_wait - waited;
            if best.is_none_or(|b| (laxity, i) < b) {
                best = Some((laxity, i));
            }
        }
    }
    if let Some((_, waiter)) = best {
        let granted = match occupant {
            None => true,
            Some(app) => {
                if let Cell::Using {
                    wait_at_grant,
                    received,
                } = cells[app]
                {
                    if received >= params[app].t_dw_min[wait_at_grant as usize] {
                        cells[app] = Cell::Cooldown {
                            since: wait_at_grant + received,
                        };
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
        };
        if granted {
            if let Cell::Waiting { waited } = cells[waiter] {
                cells[waiter] = Cell::Using {
                    wait_at_grant: waited,
                    received: 0,
                };
            }
        }
    }

    for (app, cell) in cells.iter_mut().enumerate() {
        *cell = match *cell {
            Cell::Steady => Cell::Steady,
            Cell::Exhausted => Cell::Exhausted,
            Cell::Waiting { waited } => Cell::Waiting { waited: waited + 1 },
            Cell::Using {
                wait_at_grant,
                received,
            } => Cell::Using {
                wait_at_grant,
                received: received + 1,
            },
            Cell::Cooldown { since } => {
                let since = since + 1;
                if since >= params[app].min_inter_arrival {
                    match bound {
                        Some(b) if used[app] >= b => Cell::Exhausted,
                        _ => Cell::Steady,
                    }
                } else {
                    Cell::Cooldown { since }
                }
            }
        };
    }

    StepOutcome::Ok
}

/// Interns `words` under its incremental Zobrist fingerprint `hash`: returns
/// `true` (and appends arena + meta + cached hash) when the state is new,
/// `false` when an identical state is already stored. The cached-hash index
/// rejects almost every collision without touching the arena; exact word
/// equality remains the final test on every hash match.
#[allow(clippy::too_many_arguments)]
fn insert_if_new<W: StateWord>(
    index: &mut CachedHashIndex,
    arena: &mut Vec<W>,
    meta: &mut Vec<NodeMeta>,
    hashes: &mut Vec<u64>,
    words: &[W],
    hash: u64,
    parent: u32,
    mask: u32,
    n: usize,
) -> bool {
    let new_id = meta.len() as u32;
    let found = index.intern(
        hash,
        |id| {
            let start = id as usize * n;
            &arena[start..start + n] == words
        },
        new_id,
    );
    match found {
        Some(_) => false,
        None => {
            arena.extend_from_slice(words);
            meta.push(NodeMeta { parent, mask });
            hashes.push(hash);
            true
        }
    }
}

/// Sorts the packed codes of every symmetry run, mapping a state to its
/// orbit representative.
fn canonicalize<W: StateWord>(runs: &[(usize, usize)], words: &mut [W]) {
    for &(start, end) in runs {
        if end - start >= 2 {
            words[start..end].sort_unstable();
        }
    }
}

/// Interchangeable-group structure of the eligible positions of one decoded
/// canonical state (`row` is its arena slice): within a symmetry run the
/// canonical form keeps equal codes adjacent, so one scan suffices.
/// Positions outside any run of length ≥ 2 always form singleton groups.
fn scan_groups<W: StateWord>(
    ctx: &ModelCtx,
    row: &[W],
    cells: &[Cell],
    used: &[u32],
    groups: &mut Vec<(u32, u32)>,
) {
    groups.clear();
    for &(run_start, run_end) in &ctx.runs {
        let mut i = run_start;
        while i < run_end {
            if !ctx.eligible(cells[i], used[i]) {
                i += 1;
                continue;
            }
            let code = row[i];
            let mut j = i + 1;
            while j < run_end && row[j] == code {
                j += 1;
            }
            groups.push((i as u32, (j - i) as u32));
            i = j;
        }
    }
}

/// Monomorphised exploration core; all buffers survive across runs.
#[derive(Debug, Default)]
struct Core<W> {
    /// All interned states, back to back; state `id` occupies
    /// `arena[id * n .. (id + 1) * n]`.
    arena: Vec<W>,
    /// Parent links and disturbance masks, indexed by state id. Discovery
    /// order is BFS order, so `meta` doubles as the work queue (the cursor
    /// walks it front to back).
    meta: Vec<NodeMeta>,
    /// Cached-hash intern index from state fingerprints to dense ids.
    index: CachedHashIndex,
    /// Each interned state's Zobrist fingerprint, indexed by id (parallel to
    /// `meta`) — the parent hash every incremental successor update starts
    /// from, at the cost of one u64 per state instead of a re-hash per pop.
    hashes: Vec<u64>,
    scratch: Vec<W>,
    cur_cells: Vec<Cell>,
    cur_used: Vec<u32>,
    succ_cells: Vec<Cell>,
    succ_used: Vec<u32>,
    /// Groups of interchangeable eligible positions: `(start, len)`.
    groups: Vec<(u32, u32)>,
    /// Mixed-radix disturbance counter, one digit per group.
    counts: Vec<u32>,
    /// Per-slot XOR updates performed by the current run's incremental
    /// hashing; folded into `stats` by [`Core::run`].
    slot_updates: usize,
    /// Cumulative hash/probe counters across runs of this core.
    stats: VerifyStats,
}

impl<W: StateWord> Core<W> {
    /// Runs the exploration, folding the index's work-counter deltas (plus
    /// the incremental-hashing work and its full-rehash equivalent) into the
    /// core's cumulative [`VerifyStats`] on every return path.
    ///
    /// A multi-thread pool selects the level-batched sharded exploration;
    /// one thread keeps the intern-as-you-go serial loop. Both produce
    /// bit-identical outcomes, ids and stats.
    fn run(
        &mut self,
        ctx: &ModelCtx,
        pool: &cps_par::Pool,
    ) -> Result<VerificationOutcome, VerifyError> {
        let before = *self.index.stats();
        self.slot_updates = 0;
        let result = if pool.threads() > 1 {
            self.run_parallel(ctx, pool)
        } else {
            self.run_inner(ctx)
        };
        let delta = self.index.stats().since(&before);
        self.stats.intern_probes += delta.probes;
        self.stats.hash_hits += delta.hits;
        self.stats.hash_skips += delta.hash_skips;
        self.stats.deep_compares += delta.deep_compares;
        self.stats.rehashes += delta.rehashes;
        self.stats.rehashed_entries += delta.rehashed_entries;
        self.stats.hash_slot_updates += self.slot_updates;
        // What the pre-incremental scheme would have hashed for the same run:
        // the full state width on every intern probe, plus the full width of
        // every entry re-bucketed during growth.
        self.stats.full_hash_words += (delta.probes + delta.rehashed_entries) * ctx.n;
        result
    }

    fn run_inner(&mut self, ctx: &ModelCtx) -> Result<VerificationOutcome, VerifyError> {
        let n = ctx.n;
        let Core {
            arena,
            meta,
            index,
            hashes,
            scratch,
            cur_cells,
            cur_used,
            succ_cells,
            succ_used,
            groups,
            counts,
            slot_updates,
            ..
        } = self;
        arena.clear();
        meta.clear();
        hashes.clear();
        index.reset();

        // The initial state — every application steady — encodes to all-zero
        // words under every layout and is its own canonical representative.
        // Its fingerprint is the one from-scratch hash of the whole run.
        scratch.clear();
        scratch.resize(n, W::pack(0));
        let init_hash = ctx.keys.fingerprint(scratch.iter().map(|w| w.unpack()));
        *slot_updates += n;
        insert_if_new(
            index, arena, meta, hashes, scratch, init_hash, NO_PARENT, 0, n,
        );

        let mut head = 0usize;
        let mut explored = 0usize;
        while head < meta.len() {
            let id = head as u32;
            head += 1;
            explored += 1;
            if explored > ctx.budget {
                return Err(VerifyError::StateBudgetExhausted { budget: ctx.budget });
            }
            if ctx.is_canceled() {
                return Err(VerifyError::Canceled);
            }

            cur_cells.clear();
            cur_used.clear();
            let base = id as usize * n;
            let cur_hash = hashes[id as usize];
            for (i, w) in arena[base..base + n].iter().enumerate() {
                let (cell, used) = ctx.enc[i].decode(w.unpack());
                cur_cells.push(cell);
                cur_used.push(used);
            }

            scan_groups(ctx, &arena[base..base + n], cur_cells, cur_used, groups);
            counts.clear();
            counts.resize(groups.len(), 0);

            // Mixed-radix enumeration of disturbance choices (how many
            // applications of each interchangeable group are disturbed),
            // least significant group first — on all-singleton groups this
            // is exactly the oracle's subset-mask order.
            let mut more = true;
            while more {
                succ_cells.clear();
                succ_cells.extend_from_slice(cur_cells);
                succ_used.clear();
                succ_used.extend_from_slice(cur_used);
                let mut mask = 0u32;
                for (g, &(group_start, _)) in groups.iter().enumerate() {
                    for k in 0..counts[g] {
                        let pos = (group_start + k) as usize;
                        succ_cells[pos] = Cell::Waiting { waited: 0 };
                        if ctx.bound.is_some() {
                            succ_used[pos] = succ_used[pos].saturating_add(1);
                        }
                        mask |= 1 << pos;
                    }
                }

                match step_in_place(&ctx.params, ctx.bound, succ_cells, succ_used) {
                    StepOutcome::Miss { .. } => {
                        let witness = build_witness(ctx, arena, meta, id, mask);
                        return Ok(VerificationOutcome::new(false, explored, Some(witness)));
                    }
                    StepOutcome::Ok => {
                        scratch.clear();
                        for i in 0..n {
                            scratch.push(W::pack(ctx.enc[i].encode(succ_cells[i], succ_used[i])));
                        }
                        canonicalize(&ctx.runs, scratch);
                        // Incremental Zobrist update: XOR out/in exactly the
                        // slots whose canonical code differs from the
                        // canonical parent's. One diff pass covers both the
                        // stepping and the symmetry sort — a slot the sort
                        // permuted back to its old code contributes nothing,
                        // exactly as XOR algebra demands.
                        let mut succ_hash = cur_hash;
                        for (i, (w, old)) in scratch.iter().zip(&arena[base..base + n]).enumerate()
                        {
                            if w != old {
                                succ_hash ^=
                                    ctx.keys.key(i, old.unpack()) ^ ctx.keys.key(i, w.unpack());
                                *slot_updates += 1;
                            }
                        }
                        debug_assert_eq!(
                            succ_hash,
                            ctx.keys.fingerprint(scratch.iter().map(|w| w.unpack())),
                            "incremental fingerprint must equal the from-scratch hash"
                        );
                        insert_if_new(index, arena, meta, hashes, scratch, succ_hash, id, mask, n);
                    }
                }

                more = false;
                for g in 0..groups.len() {
                    counts[g] += 1;
                    if counts[g] <= groups[g].1 {
                        more = true;
                        break;
                    }
                    counts[g] = 0;
                }
            }
        }

        Ok(VerificationOutcome::new(true, explored, None))
    }

    /// Level-batched BFS with deterministic sharded reduction (see the
    /// module docs): workers stage successors for contiguous shards of the
    /// frontier's flat disturbance-choice space; a serial merge replays
    /// interning, budget accounting and miss handling in exact serial order.
    ///
    /// Every observable of [`Core::run_inner`] — verdict, witness, explored
    /// count, interned ids, index stats, incremental-hash work — is
    /// reproduced bit-identically for any thread count.
    fn run_parallel(
        &mut self,
        ctx: &ModelCtx,
        pool: &cps_par::Pool,
    ) -> Result<VerificationOutcome, VerifyError> {
        let n = ctx.n;
        self.arena.clear();
        self.meta.clear();
        self.hashes.clear();
        self.index.reset();

        // The initial state, exactly as in the serial loop.
        self.scratch.clear();
        self.scratch.resize(n, W::pack(0));
        let init_hash = ctx
            .keys
            .fingerprint(self.scratch.iter().map(|w| w.unpack()));
        self.slot_updates += n;
        insert_if_new(
            &mut self.index,
            &mut self.arena,
            &mut self.meta,
            &mut self.hashes,
            &self.scratch,
            init_hash,
            NO_PARENT,
            0,
            n,
        );

        let mut head = 0usize;
        let mut explored = 0usize;
        // Frontier layout, rebuilt per level: the flat group buffer, each
        // parent's slice into it, and the prefix sums of the mixed-radix
        // choice counts that define the shardable flat choice space.
        let mut group_buf: Vec<(u32, u32)> = Vec::new();
        let mut group_offsets: Vec<u32> = vec![0];
        let mut choice_prefix: Vec<u64> = vec![0];

        while head < self.meta.len() {
            let batch_start = head;
            let batch_end = self.meta.len();
            head = batch_end;

            // Phase 1 (serial, O(frontier · n)): choice-space layout.
            group_buf.clear();
            group_offsets.truncate(1);
            choice_prefix.truncate(1);
            for id in batch_start..batch_end {
                let base = id * n;
                self.cur_cells.clear();
                self.cur_used.clear();
                for (i, w) in self.arena[base..base + n].iter().enumerate() {
                    let (cell, used) = ctx.enc[i].decode(w.unpack());
                    self.cur_cells.push(cell);
                    self.cur_used.push(used);
                }
                scan_groups(
                    ctx,
                    &self.arena[base..base + n],
                    &self.cur_cells,
                    &self.cur_used,
                    &mut self.groups,
                );
                // ≤ 2^32: the radix product over ≤ 32 positions is maximal
                // when every group is a singleton (2 per position).
                let count: u64 = self
                    .groups
                    .iter()
                    .map(|&(_, len)| u64::from(len) + 1)
                    .product();
                group_buf.extend_from_slice(&self.groups);
                group_offsets.push(group_buf.len() as u32);
                choice_prefix.push(choice_prefix.last().unwrap() + count);
            }
            let total = *choice_prefix.last().unwrap();

            // Phase 2 (parallel): stage successors per contiguous choice
            // shard, each worker with private buffers. Small levels stay on
            // fewer workers (at least PAR_GRAIN choices per shard before
            // another spawns): the shard boundaries move but the
            // concatenated stream is the same, so the grain only trims
            // spawn overhead, never the result.
            let by_grain = usize::try_from(total.div_ceil(PAR_GRAIN)).unwrap_or(usize::MAX);
            let workers = pool.threads().min(by_grain).max(1);
            let chunk = total.div_ceil(workers as u64);
            let arena = &self.arena;
            let hashes = &self.hashes;
            let (group_buf, group_offsets, choice_prefix) =
                (&group_buf, &group_offsets, &choice_prefix);
            let shards: Vec<ShardOutput<W>> = pool.map_indexed(workers, |w| {
                let start = w as u64 * chunk;
                let end = ((w as u64 + 1) * chunk).min(total);
                generate_shard(
                    ctx,
                    arena,
                    hashes,
                    batch_start,
                    group_buf,
                    group_offsets,
                    choice_prefix,
                    start..end,
                )
            });

            // Phase 3 (serial merge, in choice order): pop accounting,
            // interning and miss handling exactly as the serial loop
            // interleaves them.
            let mut next_pop = batch_start;
            for shard in &shards {
                for (r, rec) in shard.records.iter().enumerate() {
                    let parent = rec.parent as usize;
                    if parent >= next_pop {
                        for _ in next_pop..=parent {
                            explored += 1;
                            if explored > ctx.budget {
                                return Err(VerifyError::StateBudgetExhausted {
                                    budget: ctx.budget,
                                });
                            }
                        }
                        if ctx.is_canceled() {
                            return Err(VerifyError::Canceled);
                        }
                        next_pop = parent + 1;
                    }
                    self.slot_updates += rec.diffs as usize;
                    let ws = r * n;
                    insert_if_new(
                        &mut self.index,
                        &mut self.arena,
                        &mut self.meta,
                        &mut self.hashes,
                        &shard.words[ws..ws + n],
                        rec.hash,
                        rec.parent,
                        rec.mask,
                        n,
                    );
                }
                if let Some((miss_parent, mask)) = shard.miss {
                    let parent = miss_parent as usize;
                    if parent >= next_pop {
                        for _ in next_pop..=parent {
                            explored += 1;
                            if explored > ctx.budget {
                                return Err(VerifyError::StateBudgetExhausted {
                                    budget: ctx.budget,
                                });
                            }
                        }
                        if ctx.is_canceled() {
                            return Err(VerifyError::Canceled);
                        }
                    }
                    let witness = build_witness(ctx, &self.arena, &self.meta, miss_parent, mask);
                    return Ok(VerificationOutcome::new(false, explored, Some(witness)));
                }
            }
            debug_assert_eq!(
                next_pop, batch_end,
                "every pending state contributes at least one staged choice"
            );
        }

        Ok(VerificationOutcome::new(true, explored, None))
    }
}

/// One successor staged by a shard worker for the in-order merge: everything
/// [`insert_if_new`] needs except the words themselves, which live at the
/// matching offset of the shard's flat word buffer.
struct SuccRecord {
    parent: u32,
    mask: u32,
    hash: u64,
    /// Slots whose canonical code differs from the canonical parent's — the
    /// incremental hash work, folded into the stats when the record is
    /// consumed (so discarded post-miss records never count, exactly as in
    /// the serial loop).
    diffs: u32,
}

/// A worker's staged output for one contiguous shard of the frontier's flat
/// choice space.
struct ShardOutput<W> {
    records: Vec<SuccRecord>,
    /// `records.len() * n` packed words, record-major.
    words: Vec<W>,
    /// First deadline miss in the shard's range, if any: `(parent id,
    /// disturbance mask)`. The worker stops at it — in serial order nothing
    /// after the first miss is ever observed.
    miss: Option<(u32, u32)>,
}

/// Generates the staged successors for choices `range` of the frontier's
/// flat choice space (see [`Core::run_parallel`]'s phase 1 for the layout
/// arguments). Pure: reads only the frozen pre-level arena/hashes.
#[allow(clippy::too_many_arguments)]
fn generate_shard<W: StateWord>(
    ctx: &ModelCtx,
    arena: &[W],
    hashes: &[u64],
    batch_start: usize,
    group_buf: &[(u32, u32)],
    group_offsets: &[u32],
    choice_prefix: &[u64],
    range: std::ops::Range<u64>,
) -> ShardOutput<W> {
    let n = ctx.n;
    let mut out = ShardOutput {
        records: Vec::new(),
        words: Vec::new(),
        miss: None,
    };
    if range.start >= range.end {
        return out;
    }
    let mut cur_cells: Vec<Cell> = Vec::with_capacity(n);
    let mut cur_used: Vec<u32> = Vec::with_capacity(n);
    let mut succ_cells: Vec<Cell> = Vec::with_capacity(n);
    let mut succ_used: Vec<u32> = Vec::with_capacity(n);
    let mut scratch: Vec<W> = Vec::with_capacity(n);

    // The parent whose choice interval contains the shard's first choice.
    let mut parent_idx = choice_prefix.partition_point(|&p| p <= range.start) - 1;
    let mut c = range.start;
    while c < range.end {
        let id = (batch_start + parent_idx) as u32;
        let base = id as usize * n;
        let cur_hash = hashes[id as usize];
        cur_cells.clear();
        cur_used.clear();
        for (i, w) in arena[base..base + n].iter().enumerate() {
            let (cell, used) = ctx.enc[i].decode(w.unpack());
            cur_cells.push(cell);
            cur_used.push(used);
        }
        let groups =
            &group_buf[group_offsets[parent_idx] as usize..group_offsets[parent_idx + 1] as usize];
        let stop = range.end.min(choice_prefix[parent_idx + 1]);
        for choice in c..stop {
            // Mixed-radix digits of the choice, least significant group
            // first — the serial counter's enumeration order.
            let mut digits = choice - choice_prefix[parent_idx];
            succ_cells.clear();
            succ_cells.extend_from_slice(&cur_cells);
            succ_used.clear();
            succ_used.extend_from_slice(&cur_used);
            let mut mask = 0u32;
            for &(group_start, group_len) in groups {
                let radix = u64::from(group_len) + 1;
                let k = (digits % radix) as u32;
                digits /= radix;
                for t in 0..k {
                    let pos = (group_start + t) as usize;
                    succ_cells[pos] = Cell::Waiting { waited: 0 };
                    if ctx.bound.is_some() {
                        succ_used[pos] = succ_used[pos].saturating_add(1);
                    }
                    mask |= 1 << pos;
                }
            }

            match step_in_place(&ctx.params, ctx.bound, &mut succ_cells, &succ_used) {
                StepOutcome::Miss { .. } => {
                    out.miss = Some((id, mask));
                    return out;
                }
                StepOutcome::Ok => {
                    scratch.clear();
                    for i in 0..n {
                        scratch.push(W::pack(ctx.enc[i].encode(succ_cells[i], succ_used[i])));
                    }
                    canonicalize(&ctx.runs, &mut scratch);
                    let mut hash = cur_hash;
                    let mut diffs = 0u32;
                    for (i, (w, old)) in scratch.iter().zip(&arena[base..base + n]).enumerate() {
                        if w != old {
                            hash ^= ctx.keys.key(i, old.unpack()) ^ ctx.keys.key(i, w.unpack());
                            diffs += 1;
                        }
                    }
                    debug_assert_eq!(
                        hash,
                        ctx.keys.fingerprint(scratch.iter().map(|w| w.unpack())),
                        "incremental fingerprint must equal the from-scratch hash"
                    );
                    out.words.extend_from_slice(&scratch);
                    out.records.push(SuccRecord {
                        parent: id,
                        mask,
                        hash,
                        diffs,
                    });
                }
            }
        }
        c = stop;
        parent_idx += 1;
    }
    out
}

/// Reconstructs a concrete counterexample from the canonical parent chain.
///
/// The recorded masks are expressed in canonical coordinates, so the chain is
/// replayed from the initial state while tracking the permutation between
/// concrete application indices and canonical positions: each step's mask is
/// routed through the permutation, the concrete state is stepped with the
/// reference semantics, and the permutation is refreshed by stably sorting
/// each symmetry run's concrete codes.
fn build_witness<W: StateWord>(
    ctx: &ModelCtx,
    arena: &[W],
    meta: &[NodeMeta],
    failing_parent: u32,
    final_mask: u32,
) -> Witness {
    let n = ctx.n;
    let mut path = Vec::new();
    let mut cursor = failing_parent;
    loop {
        path.push(cursor);
        let parent = meta[cursor as usize].parent;
        if parent == NO_PARENT {
            break;
        }
        cursor = parent;
    }
    path.reverse();
    // masks[k] is applied when stepping away from depth k (= sample k).
    let masks: Vec<u32> = path[1..]
        .iter()
        .map(|&node| meta[node as usize].mask)
        .chain(std::iter::once(final_mask))
        .collect();

    let mut cells = vec![Cell::Steady; n];
    let mut used = vec![0u32; n];
    // perm[canonical position] = concrete application index.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut order: Vec<(u32, usize)> = Vec::with_capacity(n);
    let mut events = Vec::new();

    for (sample, &mask) in masks.iter().enumerate() {
        let last = sample + 1 == masks.len();
        for (bit, &app) in perm.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                debug_assert!(matches!(cells[app], Cell::Steady));
                cells[app] = Cell::Waiting { waited: 0 };
                if ctx.bound.is_some() {
                    used[app] = used[app].saturating_add(1);
                }
                events.push(TraceEvent::Disturbance { app, sample });
            }
        }
        match step_in_place(&ctx.params, ctx.bound, &mut cells, &used) {
            StepOutcome::Miss { app } => {
                assert!(
                    last,
                    "engine witness: premature deadline miss while replaying the parent chain"
                );
                events.push(TraceEvent::DeadlineMissed { app, sample });
                return Witness::new(events, app, sample);
            }
            StepOutcome::Ok => {
                assert!(
                    !last,
                    "engine witness: the failing step replayed without a deadline miss"
                );
            }
        }
        for &(start, end) in &ctx.runs {
            if end - start < 2 {
                continue;
            }
            order.clear();
            order.extend((start..end).map(|app| (ctx.enc[app].encode(cells[app], used[app]), app)));
            order.sort_unstable();
            for (offset, &(_, app)) in order.iter().enumerate() {
                perm[start + offset] = app;
            }
        }
        // The permuted concrete state must reproduce the stored canonical
        // successor — the soundness invariant of the symmetry reduction.
        debug_assert!({
            let node = path[sample + 1] as usize;
            let words = &arena[node * n..(node + 1) * n];
            (0..n).all(|j| {
                words[j].unpack() == ctx.enc[perm[j]].encode(cells[perm[j]], used[perm[j]])
            })
        });
    }
    unreachable!("the final mask always replays to the recorded deadline miss")
}

/// Reusable interned-state verification engine.
///
/// Construction is cheap; all exploration buffers (state arena, hash index,
/// scratch vectors — in both word widths) survive across
/// [`SlotVerifyEngine::verify`] calls, so verifying a batch of models (as the
/// first-fit mapping heuristic does) amortises every allocation.
///
/// # Example
///
/// ```
/// use cps_core::{AppTimingProfile, DwellTimeTable};
/// use cps_verify::{SlotSharingModel, SlotVerifyEngine, VerificationConfig};
///
/// # fn main() -> Result<(), cps_verify::VerifyError> {
/// let table = DwellTimeTable::from_arrays(18, vec![3; 12], vec![5; 12])?;
/// let a = AppTimingProfile::new("A", 9, 35, 18, 25, table.clone())?;
/// let b = AppTimingProfile::new("B", 9, 35, 18, 25, table)?;
/// let model = SlotSharingModel::new(vec![a, b])?;
/// let mut engine = SlotVerifyEngine::new();
/// let outcome = engine.verify(&model, &VerificationConfig::default())?;
/// assert!(outcome.schedulable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SlotVerifyEngine {
    narrow: Core<u16>,
    wide: Core<u32>,
    pool: cps_par::Pool,
    /// Cancellation observed by every verification until replaced; see
    /// [`SlotVerifyEngine::set_cancel_token`].
    cancel: Option<CancelToken>,
}

impl SlotVerifyEngine {
    /// Creates an engine with empty buffers on the environment-selected
    /// worker pool ([`cps_par::Pool::from_env`], i.e. `CPS_THREADS`).
    pub fn new() -> Self {
        SlotVerifyEngine::default()
    }

    /// Creates an engine exploring on an explicit worker pool. Results are
    /// bit-identical for every pool (see the module docs); the pool only
    /// decides how the successor generation is sharded.
    pub fn with_pool(pool: cps_par::Pool) -> Self {
        SlotVerifyEngine {
            pool,
            ..SlotVerifyEngine::default()
        }
    }

    /// The worker pool this engine explores on.
    pub fn pool(&self) -> cps_par::Pool {
        self.pool
    }

    /// Installs (or with `None` removes) the cancellation token every
    /// subsequent verification polls at its budget checkpoints. A canceled
    /// token makes the verification return [`VerifyError::Canceled`];
    /// [`CancelToken::reset`] re-arms it without re-installing.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Verifies that every application of the model meets its deadline in
    /// every admissible disturbance scenario.
    ///
    /// Verdict and witness validity match [`crate::checker::verify`] (the
    /// retained oracle); `states_explored` counts popped states under the
    /// same budget semantics, and is at most the oracle's count (strictly
    /// smaller whenever the symmetry reduction collapses permutation
    /// orbits).
    ///
    /// # Errors
    ///
    /// * [`VerifyError::InvalidConfig`] for a zero state budget, a zero
    ///   disturbance bound, more than 32 applications, or a profile whose
    ///   packed code space exceeds 32 bits.
    /// * [`VerifyError::StateBudgetExhausted`] when the exploration pops
    ///   more states than the budget allows.
    pub fn verify(
        &mut self,
        model: &SlotSharingModel,
        config: &VerificationConfig,
    ) -> Result<VerificationOutcome, VerifyError> {
        Self::validate_config(config)?;
        let mut ctx = ModelCtx::new(model, config)?;
        ctx.cancel = self.cancel.clone();
        self.run(&ctx)
    }

    /// Verifies the sub-model selecting `members` (indices into `profiles`)
    /// as the applications sharing the slot, in the given order, without
    /// cloning any profile — the reuse hook for callers that probe many
    /// candidate subsets of one fleet (the `cps-map` admission cascade).
    ///
    /// Equivalent to building a [`SlotSharingModel`] from clones of the
    /// selected profiles and calling [`SlotVerifyEngine::verify`]; witness
    /// trace events refer to positions within `members`.
    ///
    /// # Errors
    ///
    /// As for [`SlotVerifyEngine::verify`], plus [`VerifyError::EmptyModel`]
    /// when `members` is empty.
    ///
    /// # Panics
    ///
    /// Panics if a member index is out of bounds for `profiles`.
    pub fn verify_selected(
        &mut self,
        profiles: &[AppTimingProfile],
        members: &[usize],
        config: &VerificationConfig,
    ) -> Result<VerificationOutcome, VerifyError> {
        if members.is_empty() {
            return Err(VerifyError::EmptyModel);
        }
        Self::validate_config(config)?;
        let mut ctx = ModelCtx::from_profiles(members.iter().map(|&i| &profiles[i]), config)?;
        ctx.cancel = self.cancel.clone();
        self.run(&ctx)
    }

    /// Checks a configuration the way every engine entry point does: the
    /// state budget must be positive and a disturbance bound, if any, must
    /// allow at least one instance. Exposed so cascaded front-ends (the
    /// `cps-map` explorer) can fail on exactly the configurations the
    /// verifier would reject, before any of their cheap tiers answers.
    ///
    /// # Errors
    ///
    /// [`VerifyError::InvalidConfig`] describing the violated rule.
    pub fn validate_config(config: &VerificationConfig) -> Result<(), VerifyError> {
        if config.state_budget == 0 {
            return Err(VerifyError::InvalidConfig {
                reason: "state budget must be positive".to_string(),
            });
        }
        if config.max_disturbances_per_app == Some(0) {
            return Err(VerifyError::InvalidConfig {
                reason: "the disturbance bound must allow at least one instance".to_string(),
            });
        }
        Ok(())
    }

    /// Cumulative hash/probe work counters over the engine's lifetime,
    /// summed across both word-width cores. Long-lived callers (benches, the
    /// mapping cascade) snapshot this and report deltas via
    /// [`VerifyStats::since`].
    pub fn stats(&self) -> VerifyStats {
        self.narrow.stats.plus(&self.wide.stats)
    }

    fn run(&mut self, ctx: &ModelCtx) -> Result<VerificationOutcome, VerifyError> {
        if ctx.max_code_space <= <u16 as StateWord>::LIMIT {
            self.narrow.run(ctx, &self.pool)
        } else {
            self.wide.run(ctx, &self.pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{self, VerificationConfig};
    use crate::witness::validate_witness;
    use cps_core::{AppTimingProfile, DwellTimeTable};

    fn profile(
        name: &str,
        max_wait: usize,
        dwell_min: usize,
        dwell_plus: usize,
        r: usize,
    ) -> AppTimingProfile {
        let len = max_wait + 1;
        let jstar = max_wait + dwell_plus + 1;
        let table = DwellTimeTable::from_arrays(jstar, vec![dwell_min; len], vec![dwell_plus; len])
            .unwrap();
        AppTimingProfile::new(name, 1, jstar + 10, jstar, r.max(jstar + 1), table).unwrap()
    }

    /// Engine and oracle on the same model: verdicts agree, the engine never
    /// explores more states, every witness replays, and on models without
    /// adjacent identical profiles the popped-state counts are identical.
    fn assert_equivalent(model: &SlotSharingModel, config: &VerificationConfig) {
        let oracle = checker::verify(model, config).expect("oracle verifies");
        let mut engine = SlotVerifyEngine::new();
        let fast = engine.verify(model, config).expect("engine verifies");
        assert_eq!(fast.schedulable(), oracle.schedulable());
        assert!(
            fast.states_explored() <= oracle.states_explored(),
            "engine explored {} states, oracle {}",
            fast.states_explored(),
            oracle.states_explored()
        );
        if !has_interchangeable_neighbors(model) {
            assert_eq!(fast.states_explored(), oracle.states_explored());
        }
        if let Some(w) = fast.witness() {
            validate_witness(model, w).expect("engine witness replays");
        }
        if let Some(w) = oracle.witness() {
            validate_witness(model, w).expect("oracle witness replays");
        }
        assert_eq!(fast.witness().is_some(), oracle.witness().is_some());
    }

    #[test]
    fn matches_oracle_on_the_checker_unit_models() {
        let models = [
            vec![profile("A", 10, 3, 5, 25)],
            vec![profile("A", 10, 3, 5, 30), profile("B", 10, 3, 5, 30)],
            vec![profile("A", 0, 5, 5, 30), profile("B", 0, 5, 5, 30)],
            vec![
                profile("A", 7, 6, 6, 40),
                profile("B", 7, 6, 6, 40),
                profile("C", 7, 6, 6, 40),
            ],
            vec![profile("A", 10, 3, 8, 40), profile("B", 4, 3, 8, 40)],
        ];
        for profiles in models {
            let model = SlotSharingModel::new(profiles).unwrap();
            assert_equivalent(&model, &VerificationConfig::unbounded());
            assert_equivalent(&model, &VerificationConfig::bounded(2));
        }
    }

    #[test]
    fn matches_oracle_on_asymmetric_models_with_identical_counts() {
        let model = SlotSharingModel::new(vec![
            profile("A", 9, 2, 4, 30),
            profile("B", 6, 3, 5, 35),
            profile("C", 4, 1, 3, 28),
        ])
        .unwrap();
        assert_equivalent(&model, &VerificationConfig::unbounded());
        assert_equivalent(&model, &VerificationConfig::bounded(2));
    }

    #[test]
    fn symmetric_fleets_collapse_permutation_orbits() {
        let fleet: Vec<_> = (0..4)
            .map(|i| profile(&format!("S{i}"), 8, 2, 3, 30))
            .collect();
        let model = SlotSharingModel::new(fleet).unwrap();
        let oracle = checker::verify(&model, &VerificationConfig::unbounded()).unwrap();
        let mut engine = SlotVerifyEngine::new();
        let fast = engine
            .verify(&model, &VerificationConfig::unbounded())
            .unwrap();
        assert_eq!(fast.schedulable(), oracle.schedulable());
        assert!(
            fast.states_explored() * 2 < oracle.states_explored(),
            "symmetry reduction should collapse the fleet: engine {}, oracle {}",
            fast.states_explored(),
            oracle.states_explored()
        );
    }

    #[test]
    fn interleaved_identical_profiles_stay_sound() {
        // A run of identical profiles separated by a different one: only the
        // adjacent pair forms a symmetry class; the verdict still matches.
        let model = SlotSharingModel::new(vec![
            profile("A1", 6, 2, 3, 30),
            profile("B", 4, 3, 4, 30),
            profile("A2", 6, 2, 3, 30),
            profile("A3", 6, 2, 3, 30),
        ])
        .unwrap();
        assert_equivalent(&model, &VerificationConfig::unbounded());
    }

    #[test]
    fn wide_words_handle_large_code_spaces() {
        // A minimum inter-arrival beyond 2^16 forces the u32 core; the state
        // space is a long cooldown chain, identical for engine and oracle.
        let model = SlotSharingModel::new(vec![profile("A", 3, 2, 3, 70_000)]).unwrap();
        assert_equivalent(&model, &VerificationConfig::unbounded());
    }

    #[test]
    fn engine_witnesses_mark_the_replayed_miss() {
        let model =
            SlotSharingModel::new(vec![profile("A", 0, 5, 5, 30), profile("B", 0, 5, 5, 30)])
                .unwrap();
        let mut engine = SlotVerifyEngine::new();
        let outcome = engine
            .verify(&model, &VerificationConfig::default())
            .unwrap();
        assert!(!outcome.schedulable());
        let witness = outcome.witness().unwrap();
        validate_witness(&model, witness).unwrap();
        assert!(witness
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::DeadlineMissed { .. })));
    }

    #[test]
    fn budget_counts_popped_states() {
        let model =
            SlotSharingModel::new(vec![profile("A", 10, 3, 5, 60), profile("B", 10, 3, 5, 60)])
                .unwrap();
        let mut engine = SlotVerifyEngine::new();
        let result = engine.verify(
            &model,
            &VerificationConfig {
                max_disturbances_per_app: None,
                state_budget: 5,
            },
        );
        assert!(matches!(
            result,
            Err(VerifyError::StateBudgetExhausted { budget: 5 })
        ));
    }

    #[test]
    fn canceled_token_stops_the_exploration() {
        use crate::CancelToken;
        let model =
            SlotSharingModel::new(vec![profile("A", 10, 3, 5, 60), profile("B", 10, 3, 5, 60)])
                .unwrap();
        let mut engine = SlotVerifyEngine::new();
        let token = CancelToken::new();
        engine.set_cancel_token(Some(token.clone()));

        // Pre-canceled: the first budget checkpoint reports Canceled.
        token.cancel();
        assert_eq!(
            engine.verify(&model, &VerificationConfig::default()),
            Err(VerifyError::Canceled)
        );
        let fleet = [profile("A", 10, 3, 5, 60), profile("B", 10, 3, 5, 60)];
        assert_eq!(
            engine.verify_selected(&fleet, &[0, 1], &VerificationConfig::default()),
            Err(VerifyError::Canceled)
        );

        // Reset re-arms the same token; the engine verifies normally again
        // with the exact verdict.
        token.reset();
        assert!(engine
            .verify(&model, &VerificationConfig::default())
            .unwrap()
            .schedulable());

        // Removing the token detaches the engine from the (re-canceled) flag.
        token.cancel();
        engine.set_cancel_token(None);
        assert!(engine
            .verify(&model, &VerificationConfig::default())
            .unwrap()
            .schedulable());
    }

    #[test]
    fn configuration_validation_matches_the_oracle() {
        let model = SlotSharingModel::new(vec![profile("A", 5, 2, 3, 20)]).unwrap();
        let mut engine = SlotVerifyEngine::new();
        assert!(engine
            .verify(
                &model,
                &VerificationConfig {
                    max_disturbances_per_app: Some(0),
                    state_budget: 100,
                }
            )
            .is_err());
        assert!(engine
            .verify(
                &model,
                &VerificationConfig {
                    max_disturbances_per_app: Some(1),
                    state_budget: 0,
                }
            )
            .is_err());
    }

    #[test]
    fn buffers_are_reusable_across_models() {
        let mut engine = SlotVerifyEngine::new();
        let first =
            SlotSharingModel::new(vec![profile("A", 10, 3, 5, 30), profile("B", 10, 3, 5, 30)])
                .unwrap();
        let second =
            SlotSharingModel::new(vec![profile("A", 0, 5, 5, 30), profile("B", 0, 5, 5, 30)])
                .unwrap();
        for _ in 0..2 {
            assert!(engine
                .verify(&first, &VerificationConfig::default())
                .unwrap()
                .schedulable());
            assert!(!engine
                .verify(&second, &VerificationConfig::default())
                .unwrap()
                .schedulable());
        }
    }

    #[test]
    fn verify_selected_matches_verify_on_the_cloned_submodel() {
        // A fleet of four profiles; every 1–3 element index selection must
        // give the same outcome as cloning the selection into its own model.
        let fleet = [
            profile("A", 10, 3, 5, 30),
            profile("B", 0, 5, 5, 30),
            profile("C", 10, 3, 5, 30),
            profile("D", 4, 2, 3, 20),
        ];
        let selections: &[&[usize]] = &[
            &[0],
            &[1],
            &[0, 2],
            &[2, 0],
            &[1, 3],
            &[0, 2, 3],
            &[3, 1, 0],
        ];
        let config = VerificationConfig::default();
        let mut engine = SlotVerifyEngine::new();
        for members in selections {
            let selected = engine.verify_selected(&fleet, members, &config).unwrap();
            let cloned: Vec<AppTimingProfile> = members.iter().map(|&i| fleet[i].clone()).collect();
            let model = SlotSharingModel::new(cloned).unwrap();
            let direct = engine.verify(&model, &config).unwrap();
            assert_eq!(selected.schedulable(), direct.schedulable());
            assert_eq!(selected.states_explored(), direct.states_explored());
            assert_eq!(selected.witness().is_some(), direct.witness().is_some());
            if let Some(witness) = selected.witness() {
                validate_witness(&model, witness).expect("selected witness replays");
            }
        }
    }

    #[test]
    fn stats_track_probes_and_incremental_hash_work() {
        let model =
            SlotSharingModel::new(vec![profile("A", 10, 3, 5, 30), profile("B", 10, 3, 5, 30)])
                .unwrap();
        let mut engine = SlotVerifyEngine::new();
        let zero = engine.stats();
        assert_eq!(zero, VerifyStats::default());

        let outcome = engine
            .verify(&model, &VerificationConfig::unbounded())
            .unwrap();
        let stats = engine.stats();
        assert!(
            stats.intern_probes > outcome.states_explored(),
            "every expanded state probes at least once"
        );
        assert!(stats.hash_hits > 0, "revisited states must hit the index");
        assert!(stats.hash_slot_updates > 0);
        assert!(
            stats.full_hash_words > stats.hash_slot_updates,
            "incremental hashing must beat the full-width equivalent: {} vs {}",
            stats.full_hash_words,
            stats.hash_slot_updates
        );
        assert!(stats.hash_work_collapse() > 1.0);

        // A second run accumulates; the delta of the second run alone is
        // consistent with the first (same model, same exploration).
        engine
            .verify(&model, &VerificationConfig::unbounded())
            .unwrap();
        let second = engine.stats().since(&stats);
        assert_eq!(second.intern_probes, stats.intern_probes);
        assert_eq!(second.hash_hits, stats.hash_hits);
        assert_eq!(second.hash_slot_updates, stats.hash_slot_updates);
    }

    /// The parallel exploration is the serial exploration, reshuffled across
    /// workers and re-serialised by the merge: outcome, witness, stats and
    /// error must all be bit-identical for every thread count.
    #[test]
    fn parallel_exploration_is_bitwise_identical_to_serial() {
        let models = [
            vec![profile("A", 10, 3, 5, 30), profile("B", 10, 3, 5, 30)],
            vec![profile("A", 0, 5, 5, 30), profile("B", 0, 5, 5, 30)],
            vec![
                profile("A", 7, 6, 6, 40),
                profile("B", 7, 6, 6, 40),
                profile("C", 7, 6, 6, 40),
            ],
            vec![profile("A", 9, 2, 4, 30), profile("B", 6, 3, 5, 35)],
            // Forces the wide (u32) core.
            vec![profile("A", 3, 2, 3, 70_000)],
        ];
        let configs = [
            VerificationConfig::unbounded(),
            VerificationConfig::bounded(2),
            // A budget small enough to exhaust on the richer models.
            VerificationConfig {
                max_disturbances_per_app: None,
                state_budget: 7,
            },
        ];
        for profiles in &models {
            let model = SlotSharingModel::new(profiles.clone()).unwrap();
            for config in &configs {
                let mut serial = SlotVerifyEngine::with_pool(cps_par::Pool::serial());
                let serial_result = serial.verify(&model, config);
                for threads in [2, 3, 4, 8] {
                    let pool = cps_par::Pool::with_threads(threads);
                    let mut par = SlotVerifyEngine::with_pool(pool);
                    let par_result = par.verify(&model, config);
                    match (&serial_result, &par_result) {
                        (Ok(a), Ok(b)) => assert_eq!(a, b, "t={threads}"),
                        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                        (a, b) => panic!("serial {a:?} vs parallel {b:?} at t={threads}"),
                    }
                    assert_eq!(serial.stats(), par.stats(), "stats at t={threads}");
                }
            }
        }
    }

    #[test]
    fn verify_selected_rejects_an_empty_selection() {
        let fleet = [profile("A", 10, 3, 5, 30)];
        let mut engine = SlotVerifyEngine::new();
        assert!(matches!(
            engine.verify_selected(&fleet, &[], &VerificationConfig::default()),
            Err(crate::VerifyError::EmptyModel)
        ));
    }
}
