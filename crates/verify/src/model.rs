//! The slot-sharing model: a set of applications mapped onto one TT slot.

use cps_core::AppTimingProfile;

use crate::VerifyError;

/// A set of applications sharing a single time-triggered slot, each described
/// by its timing profile (`T_w^*`, dwell-time table, minimum disturbance
/// inter-arrival time).
///
/// The model is purely a timing abstraction — exactly the information the
/// paper feeds into its timed-automata network — and is consumed by the
/// [`crate::checker`] exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSharingModel {
    profiles: Vec<AppTimingProfile>,
}

impl SlotSharingModel {
    /// Creates a model from the profiles of the applications mapped onto the
    /// slot.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::EmptyModel`] when no profiles are given.
    pub fn new(profiles: Vec<AppTimingProfile>) -> Result<Self, VerifyError> {
        if profiles.is_empty() {
            return Err(VerifyError::EmptyModel);
        }
        Ok(SlotSharingModel { profiles })
    }

    /// The application profiles in mapping order.
    pub fn profiles(&self) -> &[AppTimingProfile] {
        &self.profiles
    }

    /// Number of applications sharing the slot.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` when the model holds no applications (never the case
    /// for a successfully constructed model).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Verifies the model with the given configuration on the interned-state
    /// [`crate::engine::SlotVerifyEngine`] (the production path).
    ///
    /// Callers that verify many models in a row should hold their own engine
    /// and call [`crate::engine::SlotVerifyEngine::verify`] to amortise the
    /// exploration buffers.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (invalid configuration or exhausted budget).
    pub fn verify(
        &self,
        config: &crate::VerificationConfig,
    ) -> Result<crate::VerificationOutcome, VerifyError> {
        crate::engine::SlotVerifyEngine::new().verify(self, config)
    }

    /// Verifies the model with the retained naive reference checker
    /// ([`crate::checker::verify`]) — the semantic oracle [`Self::verify`]
    /// is pinned to.
    ///
    /// # Errors
    ///
    /// Propagates checker errors (invalid configuration or exhausted budget).
    pub fn verify_reference(
        &self,
        config: &crate::VerificationConfig,
    ) -> Result<crate::VerificationOutcome, VerifyError> {
        crate::checker::verify(self, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::DwellTimeTable;

    fn profile(name: &str) -> AppTimingProfile {
        let table = DwellTimeTable::from_arrays(18, vec![3; 12], vec![5; 12]).unwrap();
        AppTimingProfile::new(name, 9, 35, 18, 25, table).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let model = SlotSharingModel::new(vec![profile("A"), profile("B")]).unwrap();
        assert_eq!(model.len(), 2);
        assert!(!model.is_empty());
        assert_eq!(model.profiles()[0].name(), "A");
    }

    #[test]
    fn empty_model_is_rejected() {
        assert!(matches!(
            SlotSharingModel::new(vec![]),
            Err(VerifyError::EmptyModel)
        ));
    }
}
