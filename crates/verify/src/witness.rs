//! Counterexample witnesses for failed verifications.

use std::fmt;

/// One event along a counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A disturbance was sensed by the given application at the given sample.
    Disturbance {
        /// Index of the application within the model.
        app: usize,
        /// Sample at which the disturbance was sensed.
        sample: usize,
    },
    /// The application missed its deadline: it had waited longer than its
    /// maximum admissible wait `T_w^*` without being granted the slot.
    DeadlineMissed {
        /// Index of the application within the model.
        app: usize,
        /// Sample at which the miss was detected.
        sample: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Disturbance { app, sample } => {
                write!(f, "sample {sample}: disturbance at application {app}")
            }
            TraceEvent::DeadlineMissed { app, sample } => {
                write!(f, "sample {sample}: application {app} missed its deadline")
            }
        }
    }
}

/// A counterexample: the disturbance scenario that leads to a deadline miss.
///
/// The scenario is replayable — feeding the same disturbance arrival times to
/// the co-simulator of `cps-sched` reproduces the failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    events: Vec<TraceEvent>,
    failing_app: usize,
    missed_at_sample: usize,
}

impl Witness {
    /// Creates a witness from its events and the failing application.
    pub fn new(events: Vec<TraceEvent>, failing_app: usize, missed_at_sample: usize) -> Self {
        Witness {
            events,
            failing_app,
            missed_at_sample,
        }
    }

    /// The trace events in chronological order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The application (model index) that misses its deadline.
    pub fn failing_app(&self) -> usize {
        self.failing_app
    }

    /// The sample at which the miss is detected.
    pub fn missed_at_sample(&self) -> usize {
        self.missed_at_sample
    }

    /// The disturbance arrival samples per application, extracted from the
    /// trace; index `i` lists the samples at which application `i` was
    /// disturbed.
    pub fn disturbance_times(&self, applications: usize) -> Vec<Vec<usize>> {
        let mut times = vec![Vec::new(); applications];
        for event in &self.events {
            if let TraceEvent::Disturbance { app, sample } = event {
                if *app < applications {
                    times[*app].push(*sample);
                }
            }
        }
        times
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "application {} misses its deadline at sample {}:",
            self.failing_app, self.missed_at_sample
        )?;
        for event in &self.events {
            writeln!(f, "  {event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_witness() -> Witness {
        Witness::new(
            vec![
                TraceEvent::Disturbance { app: 0, sample: 0 },
                TraceEvent::Disturbance { app: 1, sample: 0 },
                TraceEvent::Disturbance { app: 1, sample: 30 },
                TraceEvent::DeadlineMissed { app: 1, sample: 12 },
            ],
            1,
            12,
        )
    }

    #[test]
    fn accessors() {
        let w = sample_witness();
        assert_eq!(w.failing_app(), 1);
        assert_eq!(w.missed_at_sample(), 12);
        assert_eq!(w.events().len(), 4);
    }

    #[test]
    fn disturbance_times_group_by_application() {
        let w = sample_witness();
        let times = w.disturbance_times(2);
        assert_eq!(times[0], vec![0]);
        assert_eq!(times[1], vec![0, 30]);
        // Out-of-range application indices are ignored rather than panicking.
        let times = w.disturbance_times(1);
        assert_eq!(times.len(), 1);
    }

    #[test]
    fn display_is_human_readable() {
        let text = sample_witness().to_string();
        assert!(text.contains("application 1 misses"));
        assert!(text.contains("sample 0: disturbance at application 0"));
    }
}
