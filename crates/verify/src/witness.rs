//! Counterexample witnesses for failed verifications, and the replay
//! validator that checks them against the deterministic scheduler semantics.

use std::fmt;

use crate::{SlotSharingModel, VerifyError};

/// One event along a counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A disturbance was sensed by the given application at the given sample.
    Disturbance {
        /// Index of the application within the model.
        app: usize,
        /// Sample at which the disturbance was sensed.
        sample: usize,
    },
    /// The application missed its deadline: it had waited longer than its
    /// maximum admissible wait `T_w^*` without being granted the slot.
    DeadlineMissed {
        /// Index of the application within the model.
        app: usize,
        /// Sample at which the miss was detected.
        sample: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Disturbance { app, sample } => {
                write!(f, "sample {sample}: disturbance at application {app}")
            }
            TraceEvent::DeadlineMissed { app, sample } => {
                write!(f, "sample {sample}: application {app} missed its deadline")
            }
        }
    }
}

/// A counterexample: the disturbance scenario that leads to a deadline miss.
///
/// The scenario is replayable — feeding the same disturbance arrival times to
/// the co-simulator of `cps-sched` reproduces the failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    events: Vec<TraceEvent>,
    failing_app: usize,
    missed_at_sample: usize,
}

impl Witness {
    /// Creates a witness from its events and the failing application.
    pub fn new(events: Vec<TraceEvent>, failing_app: usize, missed_at_sample: usize) -> Self {
        Witness {
            events,
            failing_app,
            missed_at_sample,
        }
    }

    /// The trace events in chronological order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The application (model index) that misses its deadline.
    pub fn failing_app(&self) -> usize {
        self.failing_app
    }

    /// The sample at which the miss is detected.
    pub fn missed_at_sample(&self) -> usize {
        self.missed_at_sample
    }

    /// The disturbance arrival samples per application, extracted from the
    /// trace; index `i` lists the samples at which application `i` was
    /// disturbed.
    pub fn disturbance_times(&self, applications: usize) -> Vec<Vec<usize>> {
        let mut times = vec![Vec::new(); applications];
        for event in &self.events {
            if let TraceEvent::Disturbance { app, sample } = event {
                if *app < applications {
                    times[*app].push(*sample);
                }
            }
        }
        times
    }
}

/// Per-application location of the replay simulation. Mirrors the discrete
/// transition semantics of [`crate::checker`] (and of the interned-state
/// engine), re-implemented independently so the validator is a third voice
/// rather than a re-export of either exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplayCell {
    Steady,
    Waiting {
        waited: usize,
    },
    Using {
        wait_at_grant: usize,
        received: usize,
    },
    Cooldown {
        since: usize,
    },
}

/// Deterministically re-runs the laxity scheduler under a concrete
/// disturbance schedule (`disturbances[i]` lists the samples at which
/// application `i` is disturbed) and returns the first deadline miss as
/// `(missing applications, sample)`, or `None` when every application is
/// granted the slot in time.
///
/// The simulation follows the checker's sample semantics exactly: at every
/// sample the scheduled disturbances are sensed first, then any application
/// that has waited beyond its maximum wait `T_w^*` misses, then the scheduler
/// releases/preempts/grants, then one sample of time passes.
///
/// # Errors
///
/// Returns [`VerifyError::InvalidWitness`] when the schedule disturbs an
/// application that is not in its steady state (i.e. the schedule violates
/// the minimum inter-arrival time or re-disturbs a waiting application).
pub fn replay_first_miss(
    model: &SlotSharingModel,
    disturbances: &[Vec<usize>],
) -> Result<Option<(Vec<usize>, usize)>, VerifyError> {
    replay_core(|i| &model.profiles()[i], model.len(), disturbances)
}

/// [`replay_first_miss`] over a sub-model selected by `members` (indices
/// into `profiles`, in that order), without cloning any profile — the same
/// selection convention as [`crate::engine::SlotVerifyEngine::verify_selected`].
/// `disturbances[i]` schedules the application at `members[i]`.
///
/// This is the replay the `cps-map` admission cascade uses for its
/// necessary-condition screen, so the deterministic scheduler semantics
/// live in one place per voice.
///
/// # Errors
///
/// As for [`replay_first_miss`].
///
/// # Panics
///
/// Panics if a member index is out of bounds for `profiles`.
pub fn replay_first_miss_selected(
    profiles: &[cps_core::AppTimingProfile],
    members: &[usize],
    disturbances: &[Vec<usize>],
) -> Result<Option<(Vec<usize>, usize)>, VerifyError> {
    replay_core(|i| &profiles[members[i]], members.len(), disturbances)
}

/// The shared replay simulation behind both entry points; `profile(i)`
/// resolves position `i` of the replayed line-up.
fn replay_core<'p>(
    profile: impl Fn(usize) -> &'p cps_core::AppTimingProfile,
    apps: usize,
    disturbances: &[Vec<usize>],
) -> Result<Option<(Vec<usize>, usize)>, VerifyError> {
    if disturbances.len() != apps {
        return Err(VerifyError::InvalidWitness {
            reason: format!(
                "schedule covers {} applications, model has {apps}",
                disturbances.len()
            ),
        });
    }
    let mut events: Vec<(usize, usize)> = disturbances
        .iter()
        .enumerate()
        .flat_map(|(app, times)| times.iter().map(move |&sample| (sample, app)))
        .collect();
    events.sort_unstable();
    let last_event = events.last().map(|&(sample, _)| sample).unwrap_or(0);
    // After the last disturbance, every outcome is decided within one wait
    // plus one occupation of every application; pad by the longest cooldown
    // so the quiescence check below is conservative.
    let horizon = last_event
        + (0..apps)
            .map(|i| {
                let p = profile(i);
                p.max_wait() + p.dwell_table().max_t_dw_plus() + p.min_inter_arrival()
            })
            .max()
            .unwrap_or(0)
        + 2;

    let mut cells = vec![ReplayCell::Steady; apps];
    let mut cursor = 0usize;
    for sample in 0..horizon {
        // 1. Disturbances scheduled for this sample are sensed.
        while cursor < events.len() && events[cursor].0 == sample {
            let app = events[cursor].1;
            cursor += 1;
            if cells[app] != ReplayCell::Steady {
                return Err(VerifyError::InvalidWitness {
                    reason: format!(
                        "application {app} is disturbed at sample {sample} while not steady"
                    ),
                });
            }
            cells[app] = ReplayCell::Waiting { waited: 0 };
        }

        // 2. Deadline check.
        let missing: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter_map(|(app, cell)| match cell {
                ReplayCell::Waiting { waited } if *waited > profile(app).max_wait() => Some(app),
                _ => None,
            })
            .collect();
        if !missing.is_empty() {
            return Ok(Some((missing, sample)));
        }

        // 3. Scheduler decision: release an occupant past its useful dwell,
        //    then grant the waiting application with the smallest laxity
        //    (ties to the lowest index), preempting an occupant that has
        //    served its minimum dwell.
        let mut occupant = cells
            .iter()
            .position(|c| matches!(c, ReplayCell::Using { .. }));
        if let Some(app) = occupant {
            if let ReplayCell::Using {
                wait_at_grant,
                received,
            } = cells[app]
            {
                if received
                    >= profile(app)
                        .t_dw_plus(wait_at_grant)
                        .expect("wait in range")
                {
                    cells[app] = ReplayCell::Cooldown {
                        since: wait_at_grant + received,
                    };
                    occupant = None;
                }
            }
        }
        let best_waiter = cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                ReplayCell::Waiting { waited } => Some((profile(i).max_wait() - waited, i)),
                _ => None,
            })
            .min();
        if let Some((_, waiter)) = best_waiter {
            let granted = match occupant {
                None => true,
                Some(app) => {
                    if let ReplayCell::Using {
                        wait_at_grant,
                        received,
                    } = cells[app]
                    {
                        if received >= profile(app).t_dw_min(wait_at_grant).expect("wait in range")
                        {
                            cells[app] = ReplayCell::Cooldown {
                                since: wait_at_grant + received,
                            };
                            true
                        } else {
                            false
                        }
                    } else {
                        false
                    }
                }
            };
            if granted {
                if let ReplayCell::Waiting { waited } = cells[waiter] {
                    cells[waiter] = ReplayCell::Using {
                        wait_at_grant: waited,
                        received: 0,
                    };
                }
            }
        }

        // 4. One sample of time passes.
        for (app, cell) in cells.iter_mut().enumerate() {
            *cell = match *cell {
                ReplayCell::Steady => ReplayCell::Steady,
                ReplayCell::Waiting { waited } => ReplayCell::Waiting { waited: waited + 1 },
                ReplayCell::Using {
                    wait_at_grant,
                    received,
                } => ReplayCell::Using {
                    wait_at_grant,
                    received: received + 1,
                },
                ReplayCell::Cooldown { since } => {
                    if since + 1 >= profile(app).min_inter_arrival() {
                        ReplayCell::Steady
                    } else {
                        ReplayCell::Cooldown { since: since + 1 }
                    }
                }
            };
        }

        // Quiescence: no pending disturbances and every application steady
        // means no miss can occur any more.
        if cursor == events.len() && cells.iter().all(|c| *c == ReplayCell::Steady) {
            return Ok(None);
        }
    }
    Ok(None)
}

/// Validates a witness against the model it was produced for: the witness's
/// disturbance schedule is replayed through the deterministic scheduler and
/// the claimed application must miss its deadline at the claimed sample.
///
/// # Errors
///
/// Returns [`VerifyError::InvalidWitness`] when the replay disagrees with the
/// witness — no miss at all, a miss at a different sample, or a miss of
/// different applications.
pub fn validate_witness(model: &SlotSharingModel, witness: &Witness) -> Result<(), VerifyError> {
    let disturbances = witness.disturbance_times(model.len());
    match replay_first_miss(model, &disturbances)? {
        None => Err(VerifyError::InvalidWitness {
            reason: format!(
                "replaying the witness schedule produces no deadline miss \
                 (claimed: application {} at sample {})",
                witness.failing_app(),
                witness.missed_at_sample()
            ),
        }),
        Some((missing, sample)) => {
            if sample != witness.missed_at_sample() {
                return Err(VerifyError::InvalidWitness {
                    reason: format!(
                        "replay misses at sample {sample}, witness claims sample {}",
                        witness.missed_at_sample()
                    ),
                });
            }
            if !missing.contains(&witness.failing_app()) {
                return Err(VerifyError::InvalidWitness {
                    reason: format!(
                        "replay misses applications {missing:?} at sample {sample}, \
                         witness claims application {}",
                        witness.failing_app()
                    ),
                });
            }
            Ok(())
        }
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "application {} misses its deadline at sample {}:",
            self.failing_app, self.missed_at_sample
        )?;
        for event in &self.events {
            writeln!(f, "  {event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_witness() -> Witness {
        Witness::new(
            vec![
                TraceEvent::Disturbance { app: 0, sample: 0 },
                TraceEvent::Disturbance { app: 1, sample: 0 },
                TraceEvent::Disturbance { app: 1, sample: 30 },
                TraceEvent::DeadlineMissed { app: 1, sample: 12 },
            ],
            1,
            12,
        )
    }

    #[test]
    fn accessors() {
        let w = sample_witness();
        assert_eq!(w.failing_app(), 1);
        assert_eq!(w.missed_at_sample(), 12);
        assert_eq!(w.events().len(), 4);
    }

    #[test]
    fn disturbance_times_group_by_application() {
        let w = sample_witness();
        let times = w.disturbance_times(2);
        assert_eq!(times[0], vec![0]);
        assert_eq!(times[1], vec![0, 30]);
        // Out-of-range application indices are ignored rather than panicking.
        let times = w.disturbance_times(1);
        assert_eq!(times.len(), 1);
    }

    #[test]
    fn display_is_human_readable() {
        let text = sample_witness().to_string();
        assert!(text.contains("application 1 misses"));
        assert!(text.contains("sample 0: disturbance at application 0"));
    }

    mod replay {
        use super::super::*;
        use crate::checker::{verify, VerificationConfig};
        use cps_core::{AppTimingProfile, DwellTimeTable};

        fn profile(name: &str, max_wait: usize, dwell: usize, r: usize) -> AppTimingProfile {
            let len = max_wait + 1;
            let jstar = max_wait + dwell + 1;
            let table =
                DwellTimeTable::from_arrays(jstar, vec![dwell; len], vec![dwell; len]).unwrap();
            AppTimingProfile::new(name, 1, jstar + 10, jstar, r.max(jstar + 1), table).unwrap()
        }

        #[test]
        fn oracle_witnesses_replay_to_the_claimed_miss() {
            let model = SlotSharingModel::new(vec![profile("A", 0, 5, 30), profile("B", 0, 5, 30)])
                .unwrap();
            let outcome = verify(&model, &VerificationConfig::default()).unwrap();
            let witness = outcome.witness().expect("unschedulable model");
            validate_witness(&model, witness).expect("oracle witness replays");
        }

        #[test]
        fn missless_schedules_replay_to_none() {
            let model =
                SlotSharingModel::new(vec![profile("A", 10, 3, 30), profile("B", 10, 3, 30)])
                    .unwrap();
            // Simultaneous disturbance of both: the second waits ~3 samples,
            // well within its 10-sample tolerance.
            let miss = replay_first_miss(&model, &[vec![0], vec![0]]).unwrap();
            assert_eq!(miss, None);
            // A fabricated witness over that schedule must fail validation.
            let fake = Witness::new(
                vec![
                    TraceEvent::Disturbance { app: 0, sample: 0 },
                    TraceEvent::Disturbance { app: 1, sample: 0 },
                    TraceEvent::DeadlineMissed { app: 1, sample: 4 },
                ],
                1,
                4,
            );
            assert!(matches!(
                validate_witness(&model, &fake),
                Err(VerifyError::InvalidWitness { .. })
            ));
        }

        #[test]
        fn wrong_sample_or_application_is_rejected() {
            let model = SlotSharingModel::new(vec![profile("A", 0, 5, 30), profile("B", 0, 5, 30)])
                .unwrap();
            let outcome = verify(&model, &VerificationConfig::default()).unwrap();
            let witness = outcome.witness().unwrap();
            let shifted = Witness::new(
                witness.events().to_vec(),
                witness.failing_app(),
                witness.missed_at_sample() + 1,
            );
            assert!(matches!(
                validate_witness(&model, &shifted),
                Err(VerifyError::InvalidWitness { .. })
            ));
        }

        #[test]
        fn selected_replay_matches_the_cloned_submodel() {
            let fleet = [
                profile("A", 0, 5, 30),
                profile("B", 10, 3, 30),
                profile("C", 0, 5, 30),
            ];
            let selections: &[&[usize]] = &[&[0, 2], &[1, 0], &[2, 1, 0]];
            for members in selections {
                let schedule: Vec<Vec<usize>> = members.iter().map(|_| vec![0]).collect();
                let selected = replay_first_miss_selected(&fleet, members, &schedule).unwrap();
                let cloned: Vec<AppTimingProfile> =
                    members.iter().map(|&i| fleet[i].clone()).collect();
                let model = SlotSharingModel::new(cloned).unwrap();
                let direct = replay_first_miss(&model, &schedule).unwrap();
                assert_eq!(selected, direct, "selection {members:?}");
            }
        }

        #[test]
        fn non_steady_disturbances_are_rejected() {
            let model = SlotSharingModel::new(vec![profile("A", 5, 3, 30)]).unwrap();
            // Re-disturbing A one sample after its first arrival violates the
            // sporadic model (it is still waiting or using the slot).
            assert!(matches!(
                replay_first_miss(&model, &[vec![0, 1]]),
                Err(VerifyError::InvalidWitness { .. })
            ));
        }
    }
}
