//! Exhaustive exploration of all sporadic disturbance scenarios.
//!
//! The transition system explored here is the discrete-time semantics of the
//! paper's timed-automata network:
//!
//! * time advances in samples;
//! * at every sample each application in its steady state may or may not be
//!   hit by a disturbance (subject to the minimum inter-arrival time `r`) —
//!   this is the **only** source of nondeterminism;
//! * the scheduler then acts deterministically: it releases occupants that
//!   have exhausted their useful dwell `T_dw^+`, preempts occupants that have
//!   served their minimum dwell `T_dw^-` when someone is waiting, and grants
//!   the slot to the waiting application with the smallest laxity
//!   `D = T_w^* − T_w` (the paper's EDF-like policy);
//! * an application that is still waiting after `T_w^*` samples can no longer
//!   meet its settling requirement — the error the verification must exclude.

use std::collections::{HashMap, VecDeque};

use crate::witness::{TraceEvent, Witness};
use crate::{SlotSharingModel, VerifyError};

/// Configuration of the exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerificationConfig {
    /// Restrict every application to at most this many disturbance instances
    /// per analysis (the paper's acceleration). `None` explores the full
    /// sporadic model.
    pub max_disturbances_per_app: Option<usize>,
    /// Maximum number of states to pop and expand before giving up.
    pub state_budget: usize,
}

impl Default for VerificationConfig {
    fn default() -> Self {
        // The exact sporadic model: in this discrete formulation the full
        // model is usually *cheaper* than the instance-bounded one because
        // recurrent disturbances merge into already-visited states.
        VerificationConfig {
            max_disturbances_per_app: None,
            state_budget: 10_000_000,
        }
    }
}

impl VerificationConfig {
    /// The fully exact sporadic-disturbance model (no instance bound); this
    /// is also the default configuration.
    pub fn unbounded() -> Self {
        VerificationConfig::default()
    }

    /// The accelerated model with at most `instances` disturbances per
    /// application.
    pub fn bounded(instances: usize) -> Self {
        VerificationConfig {
            max_disturbances_per_app: Some(instances),
            ..Default::default()
        }
    }
}

/// The verdict of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationOutcome {
    schedulable: bool,
    states_explored: usize,
    witness: Option<Witness>,
}

impl VerificationOutcome {
    pub(crate) fn new(schedulable: bool, states_explored: usize, witness: Option<Witness>) -> Self {
        VerificationOutcome {
            schedulable,
            states_explored,
            witness,
        }
    }

    /// `true` when every application meets its deadline in every explored
    /// scenario.
    pub fn schedulable(&self) -> bool {
        self.schedulable
    }

    /// Number of system states that were popped and expanded (matching the
    /// budget accounting of [`VerificationConfig::state_budget`]).
    pub fn states_explored(&self) -> usize {
        self.states_explored
    }

    /// The counterexample scenario when the model is not schedulable.
    pub fn witness(&self) -> Option<&Witness> {
        self.witness.as_ref()
    }
}

/// The per-application location in the discrete transition system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Cell {
    /// No active disturbance; a new one may arrive at any sample.
    Steady,
    /// Disturbed and waiting for the slot for `waited` samples so far.
    Waiting { waited: u32 },
    /// Occupying the slot: granted after `wait_at_grant` samples, having
    /// already received `received` TT samples.
    Using { wait_at_grant: u32, received: u32 },
    /// Disturbance handled; `since` samples have elapsed since it was sensed
    /// (a new disturbance becomes possible once `since ≥ r`).
    Cooldown { since: u32 },
    /// Bounded mode only: the application has used up its disturbance budget
    /// and can no longer interfere.
    Exhausted,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SystemState {
    cells: Vec<Cell>,
    instances_used: Vec<u32>,
}

/// Per-application scheduling parameters extracted from the profiles.
struct AppParams {
    max_wait: u32,
    min_inter_arrival: u32,
    t_dw_min: Vec<u32>,
    t_dw_plus: Vec<u32>,
}

impl AppParams {
    fn t_dw_min(&self, wait: u32) -> u32 {
        self.t_dw_min[wait as usize]
    }

    fn t_dw_plus(&self, wait: u32) -> u32 {
        self.t_dw_plus[wait as usize]
    }
}

struct Explorer {
    params: Vec<AppParams>,
    bound: Option<usize>,
}

/// Result of applying the deterministic scheduler + time advance to a state.
enum StepResult {
    Ok(SystemState),
    DeadlineMiss { app: usize },
}

impl Explorer {
    fn new(model: &SlotSharingModel, config: &VerificationConfig) -> Self {
        let params = model
            .profiles()
            .iter()
            .map(|p| AppParams {
                max_wait: p.max_wait() as u32,
                min_inter_arrival: p.min_inter_arrival() as u32,
                t_dw_min: (0..=p.max_wait())
                    .map(|w| p.t_dw_min(w).expect("wait within range") as u32)
                    .collect(),
                t_dw_plus: (0..=p.max_wait())
                    .map(|w| p.t_dw_plus(w).expect("wait within range") as u32)
                    .collect(),
            })
            .collect();
        Explorer {
            params,
            bound: config.max_disturbances_per_app,
        }
    }

    fn initial_state(&self) -> SystemState {
        SystemState {
            cells: vec![Cell::Steady; self.params.len()],
            instances_used: vec![0; self.params.len()],
        }
    }

    /// Applications that may receive a disturbance in the current state.
    fn eligible(&self, state: &SystemState) -> Vec<usize> {
        state
            .cells
            .iter()
            .enumerate()
            .filter(|(i, cell)| {
                matches!(cell, Cell::Steady)
                    && self
                        .bound
                        .map(|b| (state.instances_used[*i] as usize) < b)
                        .unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Applies one sample step: the chosen disturbances arrive, the scheduler
    /// decides, and time advances by one sample.
    fn step(&self, state: &SystemState, disturbed: &[usize]) -> StepResult {
        let mut cells = state.cells.clone();
        let mut used = state.instances_used.clone();

        // 1. Disturbances sensed at this sample. The instance counter is only
        //    tracked in bounded mode; in the exact sporadic model it would
        //    needlessly distinguish otherwise identical states.
        for &app in disturbed {
            debug_assert!(matches!(cells[app], Cell::Steady));
            cells[app] = Cell::Waiting { waited: 0 };
            if self.bound.is_some() {
                used[app] = used[app].saturating_add(1);
            }
        }

        // 2. Deadline check: a waiter beyond its maximum wait can no longer
        //    meet its requirement even if granted right now.
        for (app, cell) in cells.iter().enumerate() {
            if let Cell::Waiting { waited } = cell {
                if *waited > self.params[app].max_wait {
                    return StepResult::DeadlineMiss { app };
                }
            }
        }

        // 3. Scheduler decision for this sample.
        let mut occupant: Option<usize> =
            cells.iter().position(|c| matches!(c, Cell::Using { .. }));

        // Release occupants that have exhausted their useful dwell.
        if let Some(app) = occupant {
            if let Cell::Using {
                wait_at_grant,
                received,
            } = cells[app]
            {
                if received >= self.params[app].t_dw_plus(wait_at_grant) {
                    cells[app] = Cell::Cooldown {
                        since: wait_at_grant + received,
                    };
                    occupant = None;
                }
            }
        }

        // Laxity-EDF choice among the waiters.
        let best_waiter = cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                Cell::Waiting { waited } => Some((self.params[i].max_wait - waited, i)),
                _ => None,
            })
            .min();

        if let Some((_, waiter)) = best_waiter {
            match occupant {
                None => {
                    if let Cell::Waiting { waited } = cells[waiter] {
                        cells[waiter] = Cell::Using {
                            wait_at_grant: waited,
                            received: 0,
                        };
                    }
                }
                Some(app) => {
                    if let Cell::Using {
                        wait_at_grant,
                        received,
                    } = cells[app]
                    {
                        if received >= self.params[app].t_dw_min(wait_at_grant) {
                            // Preempt the occupant and grant the slot.
                            cells[app] = Cell::Cooldown {
                                since: wait_at_grant + received,
                            };
                            if let Cell::Waiting { waited } = cells[waiter] {
                                cells[waiter] = Cell::Using {
                                    wait_at_grant: waited,
                                    received: 0,
                                };
                            }
                        }
                    }
                }
            }
        }

        // 4. One sample of time passes.
        for (app, cell) in cells.iter_mut().enumerate() {
            *cell = match *cell {
                Cell::Steady => Cell::Steady,
                Cell::Exhausted => Cell::Exhausted,
                Cell::Waiting { waited } => Cell::Waiting { waited: waited + 1 },
                Cell::Using {
                    wait_at_grant,
                    received,
                } => Cell::Using {
                    wait_at_grant,
                    received: received + 1,
                },
                Cell::Cooldown { since } => {
                    let since = since + 1;
                    if since >= self.params[app].min_inter_arrival {
                        match self.bound {
                            Some(b) if (used[app] as usize) >= b => Cell::Exhausted,
                            _ => Cell::Steady,
                        }
                    } else {
                        Cell::Cooldown { since }
                    }
                }
            };
        }

        StepResult::Ok(SystemState {
            cells,
            instances_used: used,
        })
    }
}

/// All subsets of a small index list (the disturbance choices of one sample).
fn subsets(items: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(1 << items.len());
    for mask in 0u32..(1 << items.len()) {
        let subset = items
            .iter()
            .enumerate()
            .filter(|(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, &item)| item)
            .collect();
        out.push(subset);
    }
    out
}

/// Verifies that every application mapped to the slot meets its deadline in
/// every admissible disturbance scenario.
///
/// `state_budget` bounds the number of states *popped and expanded* (not
/// merely discovered), matching the accounting of
/// [`VerificationOutcome::states_explored`] and of the interned-state
/// [`crate::engine::SlotVerifyEngine`].
///
/// # Errors
///
/// * [`VerifyError::InvalidConfig`] for a zero state budget or a zero
///   disturbance bound.
/// * [`VerifyError::StateBudgetExhausted`] when the exploration pops more
///   states than the budget allows (no verdict is implied in that case).
pub fn verify(
    model: &SlotSharingModel,
    config: &VerificationConfig,
) -> Result<VerificationOutcome, VerifyError> {
    if config.state_budget == 0 {
        return Err(VerifyError::InvalidConfig {
            reason: "state budget must be positive".to_string(),
        });
    }
    if config.max_disturbances_per_app == Some(0) {
        return Err(VerifyError::InvalidConfig {
            reason: "the disturbance bound must allow at least one instance".to_string(),
        });
    }
    let explorer = Explorer::new(model, config);
    let initial = explorer.initial_state();

    let mut nodes: Vec<Node> = vec![Node {
        state: initial.clone(),
        parent: None,
        disturbed: Vec::new(),
        sample: 0,
    }];
    let mut visited: HashMap<SystemState, usize> = HashMap::new();
    visited.insert(initial, 0);
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    // The budget gates (and `states_explored` reports) states that are
    // actually popped and expanded, not merely discovered and queued —
    // mirroring the accounting of `cps-ta::reachability::reference`.
    let mut explored = 0usize;
    while let Some(index) = queue.pop_front() {
        explored += 1;
        if explored > config.state_budget {
            return Err(VerifyError::StateBudgetExhausted {
                budget: config.state_budget,
            });
        }
        let eligible = explorer.eligible(&nodes[index].state);
        let sample = nodes[index].sample;
        for subset in subsets(&eligible) {
            let current = nodes[index].state.clone();
            match explorer.step(&current, &subset) {
                StepResult::DeadlineMiss { app } => {
                    let witness = build_witness(&nodes, index, &subset, sample, app);
                    return Ok(VerificationOutcome {
                        schedulable: false,
                        states_explored: explored,
                        witness: Some(witness),
                    });
                }
                StepResult::Ok(next) => {
                    if visited.contains_key(&next) {
                        continue;
                    }
                    visited.insert(next.clone(), nodes.len());
                    nodes.push(Node {
                        state: next,
                        parent: Some(index),
                        disturbed: subset.clone(),
                        sample: sample + 1,
                    });
                    queue.push_back(nodes.len() - 1);
                }
            }
        }
    }

    Ok(VerificationOutcome {
        schedulable: true,
        states_explored: explored,
        witness: None,
    })
}

/// One node of the exploration graph, kept for witness reconstruction.
struct Node {
    state: SystemState,
    parent: Option<usize>,
    disturbed: Vec<usize>,
    sample: usize,
}

fn build_witness(
    nodes: &[Node],
    failing_parent: usize,
    final_disturbed: &[usize],
    final_sample: usize,
    failing_app: usize,
) -> Witness {
    let mut events = Vec::new();
    // Walk back up the parent chain collecting the disturbance choices.
    let mut chain = Vec::new();
    let mut index = Some(failing_parent);
    while let Some(i) = index {
        chain.push(i);
        index = nodes[i].parent;
    }
    chain.reverse();
    for &i in &chain {
        for &app in &nodes[i].disturbed {
            events.push(TraceEvent::Disturbance {
                app,
                sample: nodes[i].sample.saturating_sub(1),
            });
        }
    }
    for &app in final_disturbed {
        events.push(TraceEvent::Disturbance {
            app,
            sample: final_sample,
        });
    }
    events.push(TraceEvent::DeadlineMissed {
        app: failing_app,
        sample: final_sample,
    });
    Witness::new(events, failing_app, final_sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{AppTimingProfile, DwellTimeTable};

    /// A profile with constant dwell times and a configurable deadline.
    fn profile(
        name: &str,
        max_wait: usize,
        dwell_min: usize,
        dwell_plus: usize,
        r: usize,
    ) -> AppTimingProfile {
        let len = max_wait + 1;
        let jstar = max_wait + dwell_plus + 1;
        let table = DwellTimeTable::from_arrays(jstar, vec![dwell_min; len], vec![dwell_plus; len])
            .unwrap();
        AppTimingProfile::new(name, 1, jstar + 10, jstar, r.max(jstar + 1), table).unwrap()
    }

    #[test]
    fn single_application_is_always_schedulable() {
        let model = SlotSharingModel::new(vec![profile("A", 10, 3, 5, 25)]).unwrap();
        let outcome = verify(&model, &VerificationConfig::default()).unwrap();
        assert!(outcome.schedulable());
        assert!(outcome.witness().is_none());
        assert!(outcome.states_explored() > 1);
    }

    #[test]
    fn two_applications_with_generous_deadlines_are_schedulable() {
        // Each needs at most 5 TT samples and can wait 10: even when both are
        // disturbed simultaneously the second one waits at most ~5 samples.
        let model =
            SlotSharingModel::new(vec![profile("A", 10, 3, 5, 30), profile("B", 10, 3, 5, 30)])
                .unwrap();
        let outcome = verify(&model, &VerificationConfig::default()).unwrap();
        assert!(outcome.schedulable());
    }

    #[test]
    fn zero_wait_tolerance_with_a_competitor_is_unschedulable() {
        // An application that cannot wait at all (max_wait = 0) shares the
        // slot with another one that needs 5 samples once granted: if the
        // competitor is granted first the zero-laxity app must miss.
        let model =
            SlotSharingModel::new(vec![profile("A", 0, 5, 5, 30), profile("B", 0, 5, 5, 30)])
                .unwrap();
        let outcome = verify(&model, &VerificationConfig::default()).unwrap();
        assert!(!outcome.schedulable());
        let witness = outcome.witness().unwrap();
        assert!(!witness.events().is_empty());
        assert!(witness
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::DeadlineMissed { .. })));
    }

    #[test]
    fn tight_deadlines_with_long_dwells_are_unschedulable() {
        // Three applications, each requiring 6 non-preemptible samples, but
        // only tolerating a 7-sample wait: the third one in line must wait at
        // least 12 samples when all are disturbed together.
        let model = SlotSharingModel::new(vec![
            profile("A", 7, 6, 6, 40),
            profile("B", 7, 6, 6, 40),
            profile("C", 7, 6, 6, 40),
        ])
        .unwrap();
        let outcome = verify(&model, &VerificationConfig::default()).unwrap();
        assert!(!outcome.schedulable());
    }

    #[test]
    fn bounded_and_unbounded_agree_on_small_models() {
        for (a_wait, b_wait, expect) in [(10, 10, true), (0, 0, false), (4, 2, true)] {
            let model = SlotSharingModel::new(vec![
                profile("A", a_wait, 3, 4, 20),
                profile("B", b_wait, 3, 4, 20),
            ])
            .unwrap();
            let bounded = verify(&model, &VerificationConfig::bounded(2)).unwrap();
            let unbounded = verify(&model, &VerificationConfig::unbounded()).unwrap();
            assert_eq!(bounded.schedulable(), expect);
            assert_eq!(bounded.schedulable(), unbounded.schedulable());
        }
    }

    #[test]
    fn witness_scenario_contains_the_failing_application() {
        let model =
            SlotSharingModel::new(vec![profile("A", 0, 5, 5, 30), profile("B", 0, 5, 5, 30)])
                .unwrap();
        let outcome = verify(&model, &VerificationConfig::default()).unwrap();
        let witness = outcome.witness().unwrap();
        let times = witness.disturbance_times(2);
        // Both applications are disturbed in the failing scenario.
        assert!(times.iter().filter(|t| !t.is_empty()).count() >= 2);
    }

    #[test]
    fn configuration_validation() {
        let model = SlotSharingModel::new(vec![profile("A", 5, 2, 3, 20)]).unwrap();
        assert!(verify(
            &model,
            &VerificationConfig {
                max_disturbances_per_app: Some(0),
                state_budget: 100,
            }
        )
        .is_err());
        assert!(verify(
            &model,
            &VerificationConfig {
                max_disturbances_per_app: Some(1),
                state_budget: 0,
            }
        )
        .is_err());
    }

    #[test]
    fn state_budget_exhaustion_is_reported() {
        let model =
            SlotSharingModel::new(vec![profile("A", 10, 3, 5, 60), profile("B", 10, 3, 5, 60)])
                .unwrap();
        let result = verify(
            &model,
            &VerificationConfig {
                max_disturbances_per_app: None,
                state_budget: 5,
            },
        );
        assert!(matches!(
            result,
            Err(VerifyError::StateBudgetExhausted { budget: 5 })
        ));
    }

    #[test]
    fn preemption_after_minimum_dwell_lets_tighter_apps_in() {
        // A holds the slot for at least 3 samples but up to 8; B can only wait
        // 4. If preemption at the minimum dwell works, B always makes it.
        let model =
            SlotSharingModel::new(vec![profile("A", 10, 3, 8, 40), profile("B", 4, 3, 8, 40)])
                .unwrap();
        let outcome = verify(&model, &VerificationConfig::default()).unwrap();
        assert!(outcome.schedulable());
    }
}
