use std::error::Error;
use std::fmt;

use cps_core::CoreError;
use cps_ta::TaError;

/// Errors produced by the slot-sharing verifier.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The model was built without any applications.
    EmptyModel,
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Human readable description of the problem.
        reason: String,
    },
    /// The exploration exceeded its state budget without a verdict.
    StateBudgetExhausted {
        /// The number of states that was allowed.
        budget: usize,
    },
    /// The exploration was canceled through a
    /// [`crate::CancelToken`] before reaching a verdict.
    Canceled,
    /// A counterexample witness failed its replay validation.
    InvalidWitness {
        /// Human readable description of the disagreement.
        reason: String,
    },
    /// An underlying profile/dwell-table operation failed.
    Core(CoreError),
    /// An underlying timed-automata analysis failed.
    Ta(TaError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyModel => {
                write!(f, "slot-sharing model needs at least one application")
            }
            VerifyError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            VerifyError::StateBudgetExhausted { budget } => {
                write!(f, "verification exceeded the state budget of {budget}")
            }
            VerifyError::Canceled => write!(f, "verification canceled before a verdict"),
            VerifyError::InvalidWitness { reason } => {
                write!(f, "witness failed replay validation: {reason}")
            }
            VerifyError::Core(e) => write!(f, "profile error: {e}"),
            VerifyError::Ta(e) => write!(f, "timed-automata error: {e}"),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Core(e) => Some(e),
            VerifyError::Ta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for VerifyError {
    fn from(e: CoreError) -> Self {
        VerifyError::Core(e)
    }
}

impl From<TaError> for VerifyError {
    fn from(e: TaError) -> Self {
        VerifyError::Ta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(VerifyError::EmptyModel.to_string().contains("at least one"));
        assert!(VerifyError::InvalidConfig {
            reason: "zero budget".to_string()
        }
        .to_string()
        .contains("zero budget"));
        assert!(VerifyError::StateBudgetExhausted { budget: 5 }
            .to_string()
            .contains("5"));
        assert!(VerifyError::Canceled.to_string().contains("canceled"));
    }

    #[test]
    fn core_errors_convert() {
        let e: VerifyError = CoreError::MissingField { field: "plant" }.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&VerifyError::EmptyModel).is_none());
    }
}
