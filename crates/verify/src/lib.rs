//! Exact discrete-time model checking of TT-slot sharing.
//!
//! The central verification question of the reproduced paper is:
//!
//! > When several applications share one time-triggered slot under the
//! > proposed switching strategy and laxity-based arbitration, is every
//! > application guaranteed to be granted the slot before its maximum wait
//! > `T_w^*`, in **all** possible disturbance scenarios?
//!
//! The paper answers it with UPPAAL on a network of timed automata. Because
//! the system is sampled-data — disturbances are sensed, counters advance and
//! scheduling decisions are taken only at multiples of the sampling period —
//! the continuous-time model is exactly equivalent to a finite discrete-time
//! transition system. This crate explores that transition system exhaustively:
//!
//! * [`SlotSharingModel`] — the applications mapped to one slot, described by
//!   their [`cps_core::AppTimingProfile`]s.
//! * [`engine`] — the interned-state exploration engine
//!   ([`SlotVerifyEngine`]): packed state words in a flat arena, hash-index
//!   deduplication, bitmask disturbance enumeration and a symmetry reduction
//!   over interchangeable applications. This is the production path, used by
//!   [`SlotSharingModel::verify`] and the mapping oracle of `cps-map`.
//! * [`checker`] — the naive breadth-first exploration over all sporadic
//!   disturbance patterns (the only source of nondeterminism), with the
//!   scheduler and the dwell-time strategy applied deterministically in
//!   every state. Retained as the semantic oracle (re-exported as
//!   [`reference`]); engine and oracle verdicts, budget semantics and
//!   witness validity are asserted equivalent in tests and on every
//!   `bench_verify` run.
//! * [`bounded`] — the paper's acceleration: restricting each application to
//!   a bounded number of disturbance instances per analysis, which collapses
//!   the post-rejection bookkeeping and speeds verification up by an order of
//!   magnitude without changing the verdict for the case study.
//! * [`conservative`] — the prior-work-style worst-case-blocking analysis,
//!   phrased as one zone-graph reachability query per application and run on
//!   the allocation-lean `cps-ta` engine; a coarser verdict than [`checker`],
//!   used for cross-validation.
//! * [`witness`] — counterexample traces when a deadline can be missed, and
//!   the replay validator ([`witness::validate_witness`]) that re-runs the
//!   scheduler under a witness's disturbance schedule.
//!
//! # Example
//!
//! ```
//! use cps_core::{AppTimingProfile, DwellTimeTable};
//! use cps_verify::{SlotSharingModel, VerificationConfig};
//!
//! # fn main() -> Result<(), cps_verify::VerifyError> {
//! // Two artificial applications with generous deadlines share a slot.
//! let table = DwellTimeTable::from_arrays(18, vec![3; 12], vec![5; 12])?;
//! let a = AppTimingProfile::new("A", 9, 35, 18, 25, table.clone())?;
//! let b = AppTimingProfile::new("B", 9, 35, 18, 25, table)?;
//! let model = SlotSharingModel::new(vec![a, b])?;
//! let outcome = model.verify(&VerificationConfig::default())?;
//! assert!(outcome.schedulable());
//! # Ok(())
//! # }
//! ```

pub mod bounded;
mod cancel;
pub mod checker;
pub mod conservative;
pub mod engine;
mod error;
mod model;
pub mod witness;

/// The retained naive checker — the semantic oracle the engine is pinned to.
pub use checker as reference;

pub use cancel::CancelToken;
pub use checker::{VerificationConfig, VerificationOutcome};
pub use conservative::{verify_conservative, verify_conservative_selected, ConservativeOutcome};
pub use engine::{
    has_interchangeable_neighbors, profiles_interchangeable, SlotVerifyEngine, VerifyStats,
};
pub use error::VerifyError;
pub use model::SlotSharingModel;
pub use witness::{
    replay_first_miss, replay_first_miss_selected, validate_witness, TraceEvent, Witness,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SlotSharingModel>();
        assert_send_sync::<VerificationConfig>();
        assert_send_sync::<VerificationOutcome>();
        assert_send_sync::<VerifyError>();
        assert_send_sync::<Witness>();
        assert_send_sync::<CancelToken>();
    }
}
