//! The paper's verification acceleration: bounding coincident disturbances.
//!
//! The fully sporadic model lets every application be disturbed again and
//! again (separated by at least `r` samples), which makes the state space
//! grow with the product of the inter-arrival counters. The paper observes
//! that, for each application, only a bounded number of disturbance instances
//! of the *other* applications can interfere with one of its own disturbances
//! — so the model can be verified with a per-application instance bound
//! without changing the verdict, at a fraction of the cost (the paper reports
//! a ~20× speed-up on its hardest slot mapping).
//!
//! [`sufficient_instance_bound`] computes such a bound from the profiles;
//! [`verify_accelerated`] runs the checker with it.

use crate::checker::{VerificationConfig, VerificationOutcome};
use crate::engine::SlotVerifyEngine;
use crate::{SlotSharingModel, VerifyError};

/// Computes a per-application disturbance-instance bound that is sufficient
/// for the slot-sharing verification to be exact.
///
/// The interference window of any single disturbance is at most
/// `max_i(T_w^*(i)) + max_i(T_dw^+*(i))` samples (the longest time between a
/// disturbance being sensed and the corresponding occupation of the slot
/// ending). Within a window of that length an application with minimum
/// inter-arrival `r` can start at most `window / r + 1` disturbances, so the
/// returned bound is that count evaluated for the smallest `r` in the model,
/// plus one instance of slack.
pub fn sufficient_instance_bound(model: &SlotSharingModel) -> usize {
    let max_wait = model
        .profiles()
        .iter()
        .map(|p| p.max_wait())
        .max()
        .unwrap_or(0);
    let max_dwell = model
        .profiles()
        .iter()
        .map(|p| p.dwell_table().max_t_dw_plus())
        .max()
        .unwrap_or(0);
    let min_r = model
        .profiles()
        .iter()
        .map(|p| p.min_inter_arrival())
        .min()
        .unwrap_or(1)
        .max(1);
    let window = max_wait + max_dwell;
    window / min_r + 2
}

/// Verifies the model with the accelerated (bounded-instance) configuration
/// derived by [`sufficient_instance_bound`], on the interned-state engine.
///
/// Note that in this discrete formulation the instance bound is kept for
/// fidelity to the paper rather than for speed: the counters stop recurrent
/// disturbances from merging into visited states, so the bounded model is
/// usually *larger* than the exact one (see
/// [`VerificationConfig::default`]).
///
/// # Errors
///
/// Propagates engine errors.
pub fn verify_accelerated(model: &SlotSharingModel) -> Result<VerificationOutcome, VerifyError> {
    let bound = sufficient_instance_bound(model);
    SlotVerifyEngine::new().verify(model, &VerificationConfig::bounded(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::{AppTimingProfile, DwellTimeTable};

    fn profile(name: &str, max_wait: usize, dwell: usize, r: usize) -> AppTimingProfile {
        let jstar = max_wait + dwell + 1;
        let table = DwellTimeTable::from_arrays(
            jstar,
            vec![dwell; max_wait + 1],
            vec![dwell; max_wait + 1],
        )
        .unwrap();
        AppTimingProfile::new(name, 1, jstar + 10, jstar, r.max(jstar + 1), table).unwrap()
    }

    #[test]
    fn bound_is_small_when_interarrival_dominates_the_window() {
        // Window = 10 + 4 = 14 ≪ r = 40 → bound of 2.
        let model =
            SlotSharingModel::new(vec![profile("A", 10, 4, 40), profile("B", 8, 4, 40)]).unwrap();
        assert_eq!(sufficient_instance_bound(&model), 2);
    }

    #[test]
    fn bound_is_two_whenever_interarrival_exceeds_the_requirement() {
        // Consistent profiles always have r > J* > T_w^* + T_dw^+, so the
        // interference window never spans more than one extra instance.
        let model = SlotSharingModel::new(vec![profile("A", 30, 10, 20)]).unwrap();
        assert_eq!(sufficient_instance_bound(&model), 2);
    }

    #[test]
    fn accelerated_verdict_matches_the_exact_one() {
        let schedulable =
            SlotSharingModel::new(vec![profile("A", 10, 3, 30), profile("B", 10, 3, 30)]).unwrap();
        let unschedulable = SlotSharingModel::new(vec![
            profile("A", 2, 4, 30),
            profile("B", 2, 4, 30),
            profile("C", 2, 4, 30),
        ])
        .unwrap();
        for (model, expected) in [(schedulable, true), (unschedulable, false)] {
            let accelerated = verify_accelerated(&model).unwrap();
            let exact = crate::checker::verify(&model, &VerificationConfig::unbounded()).unwrap();
            assert_eq!(accelerated.schedulable(), expected);
            assert_eq!(accelerated.schedulable(), exact.schedulable());
        }
    }
}
