//! Corruption fuzzing and recovery-ladder tests for the snapshot store.
//!
//! The fault-tolerance contract under test: *any* single-bit flip or
//! truncation of a serialized snapshot yields a typed [`SnapshotError`] —
//! never a panic — and a store whose newest generation is damaged recovers
//! from the previous good one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cps_fault::{FaultPlan, FaultSite};
use cps_intern::snapshot::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use cps_intern::store::{Recovery, SnapshotStore, DEFAULT_RETENTION};
use proptest::prelude::*;

const KIND: [u8; 4] = *b"TSTR";

/// A unique scratch directory per call; best-effort removed by `Scratch`'s
/// `Drop` so reruns never see stale generations.
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("cps-store-{label}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A representative sectioned snapshot: two CRC-framed sections holding a
/// tagged value, mirroring how the cascade persists its components.
fn encode(value: u64) -> Vec<u8> {
    let mut w = SnapshotWriter::new(KIND);
    w.begin_section(*b"HEAD");
    value.persist(&mut w);
    w.end_section();
    w.begin_section(*b"BODY");
    vec![value, value ^ 0xFFFF, 3].persist(&mut w);
    "payload".to_string().persist(&mut w);
    w.end_section();
    w.finish()
}

fn decode(bytes: &[u8]) -> Result<u64, SnapshotError> {
    let mut r = SnapshotReader::open(bytes, KIND)?;
    r.enter_section(*b"HEAD")?;
    let value = u64::restore(&mut r)?;
    r.exit_section()?;
    r.enter_section(*b"BODY")?;
    let echo = Vec::<u64>::restore(&mut r)?;
    let tag = String::restore(&mut r)?;
    r.exit_section()?;
    r.finish()?;
    if echo.first() != Some(&value) || tag != "payload" {
        return Err(SnapshotError::Corrupt {
            reason: "decoded fields disagree".to_string(),
        });
    }
    Ok(value)
}

proptest! {
    // Every single-bit flip of a valid snapshot is rejected with a typed
    // error, never a panic and never a silently-wrong decode.
    #[test]
    fn any_bit_flip_is_rejected(value in 0u64..u64::MAX, bit in 0usize..2048) {
        let bytes = encode(value);
        let bit = bit % (bytes.len() * 8);
        let mut damaged = bytes.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode(&damaged).is_err());
    }

    // Every truncation of a valid snapshot is rejected with a typed error.
    #[test]
    fn any_truncation_is_rejected(value in 0u64..u64::MAX, cut in 0usize..2048) {
        let bytes = encode(value);
        let cut = cut % bytes.len();
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    // With the newest on-disk generation corrupted, the ladder lands on the
    // previous good generation and reports the rejected one.
    #[test]
    fn ladder_lands_on_previous_good_generation(
        seed in 0u64..u64::MAX,
        bit in 0usize..2048,
    ) {
        let scratch = Scratch::new("ladder");
        let mut store = SnapshotStore::open(&scratch.0).unwrap();
        let good = store.save(&encode(seed)).unwrap();
        let newest = store.save(&encode(seed ^ 1)).unwrap();

        // Corrupt the newest generation in place.
        let path = store.path_of(newest);
        let mut bytes = std::fs::read(&path).unwrap();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();

        match store.recover(decode).unwrap() {
            Recovery::Loaded { generation, value, skipped } => {
                prop_assert_eq!(generation, good);
                prop_assert_eq!(value, seed);
                prop_assert_eq!(skipped.len(), 1);
                prop_assert_eq!(skipped[0].0, newest);
            }
            Recovery::ColdRebuild { .. } => prop_assert!(false, "previous generation was good"),
        }
    }
}

#[test]
fn clean_store_recovers_newest_generation() {
    let scratch = Scratch::new("clean");
    let mut store = SnapshotStore::open(&scratch.0).unwrap();
    for v in 1..=3u64 {
        store.save(&encode(v)).unwrap();
    }
    match store.recover(decode).unwrap() {
        Recovery::Loaded { value, skipped, .. } => {
            assert_eq!(value, 3);
            assert!(skipped.is_empty());
        }
        Recovery::ColdRebuild { .. } => panic!("store has good generations"),
    }
}

#[test]
fn empty_store_reports_cold_rebuild() {
    let scratch = Scratch::new("empty");
    let store = SnapshotStore::open(&scratch.0).unwrap();
    match store.recover(decode).unwrap() {
        Recovery::ColdRebuild { skipped } => assert!(skipped.is_empty()),
        Recovery::Loaded { .. } => panic!("store is empty"),
    }
}

#[test]
fn every_generation_corrupt_falls_through_to_cold_rebuild() {
    let scratch = Scratch::new("cold");
    let mut store = SnapshotStore::open(&scratch.0).unwrap();
    for v in 1..=2u64 {
        let gen = store.save(&encode(v)).unwrap();
        let path = store.path_of(gen);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X'; // break the magic
        std::fs::write(&path, &bytes).unwrap();
    }
    match store.recover(decode).unwrap() {
        Recovery::ColdRebuild { skipped } => {
            assert_eq!(skipped.len(), 2);
            for (_, reason) in &skipped {
                assert!(!reason.is_empty());
            }
        }
        Recovery::Loaded { .. } => panic!("every generation is corrupt"),
    }
}

#[test]
fn retention_prunes_old_generations() {
    let scratch = Scratch::new("retain");
    let mut store = SnapshotStore::open(&scratch.0).unwrap().with_retention(2);
    for v in 1..=5u64 {
        store.save(&encode(v)).unwrap();
    }
    assert_eq!(store.generations().unwrap(), vec![4, 5]);
    assert_eq!(DEFAULT_RETENTION, 3);
}

#[test]
fn numbering_resumes_after_reopen() {
    let scratch = Scratch::new("reopen");
    {
        let mut store = SnapshotStore::open(&scratch.0).unwrap();
        store.save(&encode(1)).unwrap();
        store.save(&encode(2)).unwrap();
    }
    let mut store = SnapshotStore::open(&scratch.0).unwrap();
    let gen = store.save(&encode(3)).unwrap();
    assert_eq!(gen, 3);
    assert_eq!(store.generations().unwrap(), vec![1, 2, 3]);
}

#[test]
fn injected_torn_writes_and_bit_flips_are_survived() {
    let scratch = Scratch::new("faulty");
    let mut store = SnapshotStore::open(&scratch.0).unwrap().with_retention(8);
    let mut plan = FaultPlan::seeded(0xFA17)
        .with_rate(FaultSite::SnapshotTornWrite, 300)
        .with_rate(FaultSite::SnapshotBitFlip, 300);

    let mut last_clean: Option<(u64, u64)> = None;
    for v in 1..=16u64 {
        let before = plan.stats().total_injected();
        let gen = store.save_faulty(&encode(v), &mut plan).unwrap();
        if plan.stats().total_injected() == before {
            last_clean = Some((gen, v));
        }
    }
    let stats = plan.stats();
    assert!(
        stats.injected(FaultSite::SnapshotTornWrite) > 0
            && stats.injected(FaultSite::SnapshotBitFlip) > 0,
        "the storm must actually fire at this seed"
    );
    let (clean_gen, clean_value) = last_clean.expect("some save escaped the storm at this seed");

    match store.recover(decode).unwrap() {
        Recovery::Loaded {
            generation, value, ..
        } => {
            assert_eq!(generation, clean_gen);
            assert_eq!(value, clean_value);
        }
        Recovery::ColdRebuild { .. } => panic!("a clean generation exists"),
    }
}
