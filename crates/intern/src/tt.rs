//! Bounded transposition table with two-way replacement.

use crate::snapshot::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};

/// Snapshot kind tag of [`TwoWayTranspositionTable`].
const KIND: [u8; 4] = *b"TWTT";

/// Work counters of a [`TwoWayTranspositionTable`], cumulative over its
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TtStats {
    /// Lookup probes performed.
    pub lookups: usize,
    /// Lookups answered from a stored entry (exact key match).
    pub hits: usize,
    /// Entries stored (fresh or overwriting a matching key).
    pub stores: usize,
    /// Stored entries dropped to make room — the boundedness at work.
    pub evictions: usize,
}

#[derive(Debug, Clone)]
struct Entry<K, V> {
    fingerprint: u64,
    depth: u32,
    key: K,
    value: V,
}

/// A bounded verdict cache keyed by a 64-bit fingerprint, with the classic
/// two-way replacement scheme: each bucket holds a *depth-preferred* way
/// (kept while incoming entries are shallower) and an *always-replace* way
/// (overwritten freely), so expensive deep results survive floods of cheap
/// shallow ones while recent results stay reachable.
///
/// Entries carry their full key next to the fingerprint and a lookup only
/// returns on an exact key match — a fingerprint collision costs a compare,
/// never a wrong value. Replacing the unbounded memo maps with this table
/// therefore bounds memory without changing any verdict; evicted entries are
/// simply recomputed on their next miss.
#[derive(Debug)]
pub struct TwoWayTranspositionTable<K, V> {
    /// `2 * buckets` ways, bucket `b` occupying slots `2b` (depth-preferred)
    /// and `2b + 1` (always-replace).
    ways: Vec<Option<Entry<K, V>>>,
    bucket_mask: u64,
    stats: TtStats,
}

impl<K: Eq, V> TwoWayTranspositionTable<K, V> {
    /// Creates a table with `buckets` two-way buckets, rounded up to a power
    /// of two (minimum 1). Capacity is `2 × buckets` entries, fixed for the
    /// table's lifetime.
    pub fn new(buckets: usize) -> Self {
        let buckets = buckets.max(1).next_power_of_two();
        let mut ways = Vec::new();
        ways.resize_with(buckets * 2, || None);
        TwoWayTranspositionTable {
            ways,
            bucket_mask: (buckets - 1) as u64,
            stats: TtStats::default(),
        }
    }

    /// Maximum number of entries the table can hold.
    pub fn capacity(&self) -> usize {
        self.ways.len()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.ways.iter().filter(|w| w.is_some()).count()
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.ways.iter().all(|w| w.is_none())
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> &TtStats {
        &self.stats
    }

    fn bucket_base(&self, fingerprint: u64) -> usize {
        ((fingerprint & self.bucket_mask) as usize) * 2
    }

    /// Looks `key` up under `fingerprint`; returns the stored value only on
    /// an exact key match.
    pub fn get(&mut self, fingerprint: u64, key: &K) -> Option<&V> {
        self.stats.lookups += 1;
        let base = self.bucket_base(fingerprint);
        for way in base..base + 2 {
            if let Some(entry) = &self.ways[way] {
                if entry.fingerprint == fingerprint && entry.key == *key {
                    self.stats.hits += 1;
                    return self.ways[way].as_ref().map(|e| &e.value);
                }
            }
        }
        None
    }

    /// Stores `value` for `key` under `fingerprint`. `depth` orders entries
    /// by how expensive they were to compute: the depth-preferred way keeps
    /// the deepest entry seen for its bucket, everything else falls through
    /// to the always-replace way.
    pub fn insert(&mut self, fingerprint: u64, depth: u32, key: K, value: V) {
        self.stats.stores += 1;
        let base = self.bucket_base(fingerprint);
        // An existing entry for the same key is updated in place.
        for way in base..base + 2 {
            if let Some(entry) = &mut self.ways[way] {
                if entry.fingerprint == fingerprint && entry.key == key {
                    entry.depth = depth;
                    entry.value = value;
                    return;
                }
            }
        }
        let entry = Entry {
            fingerprint,
            depth,
            key,
            value,
        };
        let preferred = &mut self.ways[base];
        match preferred {
            Some(held) if held.depth > depth => {
                // The preferred way holds a deeper result; the newcomer goes
                // to the always-replace way.
                if self.ways[base + 1].replace(entry).is_some() {
                    self.stats.evictions += 1;
                }
            }
            _ => {
                // The newcomer takes the preferred way; a displaced holder
                // falls to the always-replace way rather than vanishing.
                if let Some(displaced) = preferred.replace(entry) {
                    if self.ways[base + 1].replace(displaced).is_some() {
                        self.stats.evictions += 1;
                    }
                }
            }
        }
    }
}

impl<K: Eq + Persist, V: Persist> TwoWayTranspositionTable<K, V> {
    /// Writes the table into a snapshot payload, way positions and
    /// replacement depths included, so the restored table hits, misses,
    /// displaces and evicts exactly like the saved one would have. Work
    /// counters are not persisted — a restored table counts from zero.
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.ways.len() / 2);
        for way in &self.ways {
            match way {
                None => w.put_bool(false),
                Some(entry) => {
                    w.put_bool(true);
                    w.put_u64(entry.fingerprint);
                    w.put_u32(entry.depth);
                    entry.key.persist(w);
                    entry.value.persist(w);
                }
            }
        }
    }

    /// Reads a table previously written by
    /// [`TwoWayTranspositionTable::write_snapshot`].
    ///
    /// # Errors
    ///
    /// Propagates payload truncation or a non-power-of-two bucket count.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let buckets = r.take_usize()?;
        if !buckets.is_power_of_two() {
            return Err(SnapshotError::Corrupt {
                reason: format!("transposition table bucket count {buckets} is not a power of two"),
            });
        }
        let capacity = buckets
            .checked_mul(2)
            .ok_or_else(|| SnapshotError::Corrupt {
                reason: "transposition table bucket count overflows".to_string(),
            })?;
        let mut ways = Vec::with_capacity(capacity.min(1 << 24));
        for _ in 0..capacity {
            let way = if r.take_bool()? {
                Some(Entry {
                    fingerprint: r.take_u64()?,
                    depth: r.take_u32()?,
                    key: K::restore(r)?,
                    value: V::restore(r)?,
                })
            } else {
                None
            };
            ways.push(way);
        }
        Ok(TwoWayTranspositionTable {
            ways,
            bucket_mask: (buckets - 1) as u64,
            stats: TtStats::default(),
        })
    }

    /// Serializes the table as a standalone snapshot.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(KIND);
        self.write_snapshot(&mut w);
        w.finish()
    }

    /// Restores a table from [`TwoWayTranspositionTable::to_snapshot_bytes`]
    /// output.
    ///
    /// # Errors
    ///
    /// Propagates framing and payload violations as [`SnapshotError`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, KIND)?;
        let tt = TwoWayTranspositionTable::read_snapshot(&mut r)?;
        r.finish()?;
        Ok(tt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_and_retrieves_on_exact_key_match() {
        let mut tt: TwoWayTranspositionTable<Vec<u32>, bool> = TwoWayTranspositionTable::new(8);
        assert!(tt.is_empty());
        tt.insert(42, 3, vec![1, 2, 3], true);
        assert_eq!(tt.get(42, &vec![1, 2, 3]), Some(&true));
        assert_eq!(
            tt.get(42, &vec![9, 9, 9]),
            None,
            "fingerprint collision must miss"
        );
        assert_eq!(tt.get(43, &vec![1, 2, 3]), None);
        assert_eq!(tt.stats().hits, 1);
        assert_eq!(tt.stats().lookups, 3);
    }

    #[test]
    fn updates_in_place_without_duplicating() {
        let mut tt: TwoWayTranspositionTable<u32, u32> = TwoWayTranspositionTable::new(4);
        tt.insert(7, 1, 7, 10);
        tt.insert(7, 2, 7, 20);
        assert_eq!(tt.len(), 1);
        assert_eq!(tt.get(7, &7), Some(&20));
    }

    #[test]
    fn depth_preferred_way_survives_shallow_floods() {
        // One bucket: every insert lands in the same two ways.
        let mut tt: TwoWayTranspositionTable<u32, u32> = TwoWayTranspositionTable::new(1);
        tt.insert(0, 9, 100, 1);
        for i in 0..10 {
            tt.insert(u64::from(i) << 1, 1, i, 0);
        }
        assert_eq!(
            tt.get(0, &100),
            Some(&1),
            "the deep entry must survive in the depth-preferred way"
        );
        assert!(tt.stats().evictions > 0, "the shallow flood must evict");
        assert_eq!(tt.capacity(), 2);
    }

    #[test]
    fn deeper_entries_displace_into_the_second_way() {
        let mut tt: TwoWayTranspositionTable<u32, u32> = TwoWayTranspositionTable::new(1);
        tt.insert(0, 1, 1, 10);
        tt.insert(0, 5, 2, 20);
        // The deeper entry took the preferred way; the shallow one fell to
        // the always-replace way — both still reachable.
        assert_eq!(tt.get(0, &1), Some(&10));
        assert_eq!(tt.get(0, &2), Some(&20));
        assert_eq!(tt.stats().evictions, 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_way_layout_and_replacement_state() {
        let mut tt: TwoWayTranspositionTable<Vec<u32>, bool> = TwoWayTranspositionTable::new(4);
        for i in 0..20u32 {
            tt.insert(u64::from(i) * 0x9E37, i % 5, vec![i, i + 1], i % 2 == 0);
        }
        let bytes = tt.to_snapshot_bytes();
        let mut restored = TwoWayTranspositionTable::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.capacity(), tt.capacity());
        assert_eq!(restored.len(), tt.len());
        assert_eq!(restored.stats(), &TtStats::default(), "counters restart");
        // Way-for-way identical: re-serializing reproduces the same bytes,
        // and every surviving entry answers exactly as in the original.
        assert_eq!(restored.to_snapshot_bytes(), bytes);
        for i in 0..20u32 {
            let key = vec![i, i + 1];
            let fp = u64::from(i) * 0x9E37;
            assert_eq!(restored.get(fp, &key).copied(), tt.get(fp, &key).copied());
        }
    }

    #[test]
    fn snapshot_rejects_a_non_power_of_two_bucket_count() {
        let mut w = crate::snapshot::SnapshotWriter::new(*b"TWTT");
        w.put_usize(3);
        assert!(matches!(
            TwoWayTranspositionTable::<u32, bool>::from_snapshot_bytes(&w.finish()).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn bucket_count_rounds_up_to_a_power_of_two() {
        let tt: TwoWayTranspositionTable<u32, u32> = TwoWayTranspositionTable::new(5);
        assert_eq!(tt.capacity(), 16);
        let tt: TwoWayTranspositionTable<u32, u32> = TwoWayTranspositionTable::new(0);
        assert_eq!(tt.capacity(), 2);
    }
}
