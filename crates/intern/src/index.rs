//! Open-addressing intern index with cached entry hashes.

use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Empty-bucket sentinel; interned ids must stay below it.
const EMPTY: u32 = u32::MAX;
/// Buckets allocated on first use; always a power of two.
const INITIAL_CAPACITY: usize = 1 << 10;

/// Snapshot kind tag of [`CachedHashIndex`].
const KIND: [u8; 4] = *b"CHIX";

/// Work counters of a [`CachedHashIndex`], cumulative over the index's
/// lifetime (they survive [`CachedHashIndex::reset`], so a long-lived engine
/// reports totals and benches report deltas between snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Intern probes performed ([`CachedHashIndex::intern`] calls).
    pub probes: usize,
    /// Probes resolved to an already-interned entry (dedup hits).
    pub hits: usize,
    /// Occupied buckets skipped on a cached-hash mismatch alone — collisions
    /// rejected without touching the interned words.
    pub hash_skips: usize,
    /// Full key comparisons performed (cached hash matched first).
    pub deep_compares: usize,
    /// Table growths.
    pub rehashes: usize,
    /// Entries re-bucketed during growths, each from its cached hash — the
    /// words behind them are *not* re-hashed.
    pub rehashed_entries: usize,
}

impl IndexStats {
    /// Component-wise difference `self − earlier` between two snapshots of a
    /// long-lived index.
    pub fn since(&self, earlier: &IndexStats) -> IndexStats {
        IndexStats {
            probes: self.probes - earlier.probes,
            hits: self.hits - earlier.hits,
            hash_skips: self.hash_skips - earlier.hash_skips,
            deep_compares: self.deep_compares - earlier.deep_compares,
            rehashes: self.rehashes - earlier.rehashes,
            rehashed_entries: self.rehashed_entries - earlier.rehashed_entries,
        }
    }
}

/// Open-addressing hash index from caller-supplied 64-bit hashes to dense
/// `u32` ids, caching each entry's hash next to its id.
///
/// The index owns no keys: the caller supplies the hash (typically an
/// incrementally maintained Zobrist fingerprint) and an equality predicate
/// over ids (typically a word compare against an arena slice). Probing
/// compares the cached hash before invoking the predicate, and growth
/// re-buckets the `(hash, id)` pairs themselves — the arena is never
/// re-hashed. Exact key equality remains the final test on every hash match,
/// so hash collisions cost a predicate call but never a wrong id.
#[derive(Debug, Default)]
pub struct CachedHashIndex {
    /// Cached entry hashes, parallel to `ids`.
    hashes: Vec<u64>,
    /// Interned ids per bucket, [`EMPTY`] when free.
    ids: Vec<u32>,
    len: usize,
    stats: IndexStats,
}

impl CachedHashIndex {
    /// Creates an empty index; buckets are allocated lazily on first use.
    pub fn new() -> Self {
        CachedHashIndex::default()
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entry is interned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative work counters (survive [`CachedHashIndex::reset`]).
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Clears all entries but keeps the bucket allocation and the cumulative
    /// statistics — the reuse hook for engines that run many models.
    pub fn reset(&mut self) {
        self.ids.iter_mut().for_each(|id| *id = EMPTY);
        self.len = 0;
    }

    /// Interns `hash` with `new_id`: returns `Some(existing)` when an entry
    /// with an equal cached hash satisfies `is_equal` (the id already
    /// interned for this key), or `None` after storing `new_id` as a new
    /// entry. `is_equal` receives candidate ids whose cached hash matches
    /// `hash` and must compare the underlying keys exactly.
    pub fn intern(
        &mut self,
        hash: u64,
        mut is_equal: impl FnMut(u32) -> bool,
        new_id: u32,
    ) -> Option<u32> {
        debug_assert!(new_id != EMPTY, "id space exhausted");
        self.stats.probes += 1;
        if (self.len + 1) * 4 > self.ids.len() * 3 {
            self.grow();
        }
        let cap_mask = self.ids.len() - 1;
        let mut slot = (hash as usize) & cap_mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                self.ids[slot] = new_id;
                self.hashes[slot] = hash;
                self.len += 1;
                return None;
            }
            if self.hashes[slot] == hash {
                self.stats.deep_compares += 1;
                if is_equal(id) {
                    self.stats.hits += 1;
                    return Some(id);
                }
            } else {
                self.stats.hash_skips += 1;
            }
            slot = (slot + 1) & cap_mask;
        }
    }

    /// Writes the index into a snapshot payload, bucket positions included,
    /// so the restored index probes exactly like the saved one. Work
    /// counters are not persisted — a restored index counts from zero.
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len);
        w.put_usize(self.ids.len());
        for (&hash, &id) in self.hashes.iter().zip(&self.ids) {
            w.put_u64(hash);
            w.put_u32(id);
        }
    }

    /// Reads an index previously written by
    /// [`CachedHashIndex::write_snapshot`].
    ///
    /// # Errors
    ///
    /// Propagates payload truncation, a non-power-of-two capacity, or an
    /// entry count that disagrees with the stored buckets.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_usize()?;
        let capacity = r.take_usize()?;
        if capacity != 0 && !capacity.is_power_of_two() {
            return Err(SnapshotError::Corrupt {
                reason: format!("index capacity {capacity} is not a power of two"),
            });
        }
        let mut hashes = Vec::with_capacity(capacity.min(1 << 24));
        let mut ids = Vec::with_capacity(capacity.min(1 << 24));
        let mut occupied = 0usize;
        for _ in 0..capacity {
            let hash = r.take_u64()?;
            let id = r.take_u32()?;
            occupied += usize::from(id != EMPTY);
            hashes.push(hash);
            ids.push(id);
        }
        if occupied != len {
            return Err(SnapshotError::Corrupt {
                reason: format!("index claims {len} entries but stores {occupied}"),
            });
        }
        Ok(CachedHashIndex {
            hashes,
            ids,
            len,
            stats: IndexStats::default(),
        })
    }

    /// Serializes the index as a standalone snapshot.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(KIND);
        self.write_snapshot(&mut w);
        w.finish()
    }

    /// Restores an index from [`CachedHashIndex::to_snapshot_bytes`] output.
    ///
    /// # Errors
    ///
    /// Propagates framing and payload violations as [`SnapshotError`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, KIND)?;
        let index = CachedHashIndex::read_snapshot(&mut r)?;
        r.finish()?;
        Ok(index)
    }

    /// Doubles the bucket array, re-bucketing every entry from its cached
    /// hash — no key is re-hashed.
    fn grow(&mut self) {
        let new_capacity = (self.ids.len() * 2).max(INITIAL_CAPACITY);
        if !self.ids.is_empty() {
            self.stats.rehashes += 1;
            self.stats.rehashed_entries += self.len;
        }
        let old_hashes = std::mem::replace(&mut self.hashes, vec![0; new_capacity]);
        let old_ids = std::mem::replace(&mut self.ids, vec![EMPTY; new_capacity]);
        let cap_mask = new_capacity - 1;
        for (hash, id) in old_hashes.into_iter().zip(old_ids) {
            if id == EMPTY {
                continue;
            }
            let mut slot = (hash as usize) & cap_mask;
            while self.ids[slot] != EMPTY {
                slot = (slot + 1) & cap_mask;
            }
            self.ids[slot] = id;
            self.hashes[slot] = hash;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zobrist::seq_fingerprint;

    /// Interns `words` into `index`/`arena` the way the engines do.
    fn intern_words(index: &mut CachedHashIndex, arena: &mut Vec<Vec<u32>>, words: &[u32]) -> u32 {
        let hash = seq_fingerprint(words);
        let new_id = arena.len() as u32;
        match index.intern(hash, |id| arena[id as usize] == words, new_id) {
            Some(existing) => existing,
            None => {
                arena.push(words.to_vec());
                new_id
            }
        }
    }

    #[test]
    fn interns_and_deduplicates() {
        let mut index = CachedHashIndex::new();
        let mut arena = Vec::new();
        assert!(index.is_empty());
        let a = intern_words(&mut index, &mut arena, &[1, 2, 3]);
        let b = intern_words(&mut index, &mut arena, &[4, 5, 6]);
        let a2 = intern_words(&mut index, &mut arena, &[1, 2, 3]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(index.len(), 2);
        assert_eq!(index.stats().probes, 3);
        assert_eq!(index.stats().hits, 1);
    }

    #[test]
    fn growth_rebuckets_from_cached_hashes_and_preserves_entries() {
        let mut index = CachedHashIndex::new();
        let mut arena = Vec::new();
        // Enough entries to force at least one growth past the initial
        // capacity's 3/4 load bound.
        let n = INITIAL_CAPACITY;
        for i in 0..n as u32 {
            intern_words(&mut index, &mut arena, &[i, i ^ 7]);
        }
        assert!(index.stats().rehashes >= 1, "growth must have happened");
        assert!(index.stats().rehashed_entries > 0);
        // Every entry is still found, with no new ids minted.
        for i in 0..n as u32 {
            let id = intern_words(&mut index, &mut arena, &[i, i ^ 7]);
            assert_eq!(arena[id as usize], vec![i, i ^ 7]);
        }
        assert_eq!(index.len(), n);
        assert_eq!(arena.len(), n);
    }

    /// (c) of the hash-soundness checklist: states with equal fingerprints
    /// but different words are still distinguished by the interner.
    #[test]
    fn forced_hash_collisions_are_distinguished_by_exact_equality() {
        let mut index = CachedHashIndex::new();
        let arena: Vec<Vec<u32>> = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let colliding_hash = 0xDEAD_BEEF_u64;
        assert_eq!(
            index.intern(colliding_hash, |id| arena[id as usize] == [1, 2], 0),
            None
        );
        // Same hash, different words: must insert a fresh id, after one deep
        // compare that rejects the stored entry.
        assert_eq!(
            index.intern(colliding_hash, |id| arena[id as usize] == [3, 4], 1),
            None
        );
        assert_eq!(index.len(), 2);
        assert!(index.stats().deep_compares >= 1);
        // Lookups under the colliding hash resolve to the right ids.
        assert_eq!(
            index.intern(colliding_hash, |id| arena[id as usize] == [1, 2], 2),
            Some(0)
        );
        assert_eq!(
            index.intern(colliding_hash, |id| arena[id as usize] == [3, 4], 2),
            Some(1)
        );
        // A distinct hash never reaches the deep compare of those entries.
        let skips_before = index.stats().hash_skips;
        assert_eq!(
            index.intern(!colliding_hash, |id| arena[id as usize] == [5, 6], 2),
            None
        );
        assert!(index.stats().hash_skips >= skips_before);
    }

    #[test]
    fn reset_keeps_capacity_and_cumulative_stats() {
        let mut index = CachedHashIndex::new();
        let mut arena = Vec::new();
        for i in 0..100u32 {
            intern_words(&mut index, &mut arena, &[i]);
        }
        let probes_before = index.stats().probes;
        index.reset();
        assert!(index.is_empty());
        assert_eq!(index.stats().probes, probes_before, "stats survive reset");
        let mut arena2 = Vec::new();
        let id = intern_words(&mut index, &mut arena2, &[42]);
        assert_eq!(id, 0, "ids restart after reset");
    }

    #[test]
    fn snapshot_roundtrip_preserves_bucket_layout() {
        let mut index = CachedHashIndex::new();
        let mut arena = Vec::new();
        for i in 0..900u32 {
            intern_words(&mut index, &mut arena, &[i, i.wrapping_mul(31)]);
        }
        let bytes = index.to_snapshot_bytes();
        let mut restored = CachedHashIndex::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), index.len());
        assert_eq!(restored.stats(), &IndexStats::default(), "counters restart");
        // Layout-identical: re-serializing reproduces the same bytes, and
        // every key resolves to its original id without new inserts.
        assert_eq!(restored.to_snapshot_bytes(), bytes);
        for i in 0..900u32 {
            let id = intern_words(&mut restored, &mut arena, &[i, i.wrapping_mul(31)]);
            assert_eq!(arena[id as usize], vec![i, i.wrapping_mul(31)]);
        }
        assert_eq!(restored.len(), 900);

        // An empty (never grown) index roundtrips too.
        let empty = CachedHashIndex::new();
        let restored = CachedHashIndex::from_snapshot_bytes(&empty.to_snapshot_bytes()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn snapshot_rejects_inconsistent_payloads() {
        // Capacity that is not a power of two.
        let mut w = crate::snapshot::SnapshotWriter::new(*b"CHIX");
        w.put_usize(0);
        w.put_usize(3);
        for _ in 0..3 {
            w.put_u64(0);
            w.put_u32(EMPTY);
        }
        assert!(matches!(
            CachedHashIndex::from_snapshot_bytes(&w.finish()).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
        // Entry count that disagrees with the stored buckets.
        let mut w = crate::snapshot::SnapshotWriter::new(*b"CHIX");
        w.put_usize(2);
        w.put_usize(4);
        for _ in 0..4 {
            w.put_u64(7);
            w.put_u32(EMPTY);
        }
        assert!(matches!(
            CachedHashIndex::from_snapshot_bytes(&w.finish()).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn stats_since_diffs_componentwise() {
        let a = IndexStats {
            probes: 10,
            hits: 4,
            hash_skips: 3,
            deep_compares: 5,
            rehashes: 2,
            rehashed_entries: 7,
        };
        let b = IndexStats {
            probes: 4,
            hits: 1,
            hash_skips: 1,
            deep_compares: 2,
            rehashes: 1,
            rehashed_entries: 3,
        };
        let d = a.since(&b);
        assert_eq!(d.probes, 6);
        assert_eq!(d.hits, 3);
        assert_eq!(d.rehashed_entries, 4);
    }
}
