//! Crash-safe on-disk rotation for snapshots, with a recovery ladder.
//!
//! The snapshot format ([`crate::snapshot`]) makes corruption *detectable*;
//! this module makes it *survivable*. A [`SnapshotStore`] owns one directory
//! of generation-numbered snapshot files and provides the three guarantees a
//! long-running service needs:
//!
//! * **atomic writes** — every save goes to a temp file first and reaches its
//!   final name via `rename`, so a crash mid-save can tear only the temp
//!   file, never a published generation;
//! * **bounded rotation** — generations are numbered monotonically
//!   (`gen-0000000001.cpsn`, …) and old ones are pruned past a retention
//!   bound, so the store's disk footprint is a constant, not a log;
//! * **a recovery ladder** — [`SnapshotStore::recover`] walks generations
//!   newest-first through a caller-supplied decoder, returns the first one
//!   that decodes ([`Recovery::Loaded`]), and falls through to
//!   [`Recovery::ColdRebuild`] when none does, reporting what was skipped
//!   and why. Corruption is data, not a panic.
//!
//! For tests and soaks, [`SnapshotStore::save_faulty`] threads a
//! [`cps_fault::FaultPlan`] through the write path: a
//! [`cps_fault::FaultSite::SnapshotTornWrite`] truncates the bytes
//! mid-payload and a [`cps_fault::FaultSite::SnapshotBitFlip`] flips one
//! payload bit — both *published* (renamed into place) so the recovery
//! ladder, not luck, has to cope with them.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cps_fault::{FaultPlan, FaultSite};

use crate::snapshot::SnapshotError;

/// Generations kept on disk by default after a save.
pub const DEFAULT_RETENTION: usize = 3;

const EXTENSION: &str = "cpsn";

/// An I/O failure in the snapshot store, with the operation and path that
/// failed.
#[derive(Debug)]
pub struct StoreError {
    /// Operation that failed (e.g. `"create directory"`, `"rename"`).
    pub op: &'static str,
    /// Path the operation targeted.
    pub path: PathBuf,
    /// Underlying I/O error.
    pub error: io::Error,
}

impl StoreError {
    fn new(op: &'static str, path: &Path, error: io::Error) -> Self {
        StoreError {
            op,
            path: path.to_path_buf(),
            error,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot store failed to {} {}: {}",
            self.op,
            self.path.display(),
            self.error
        )
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Outcome of walking the recovery ladder.
#[derive(Debug)]
pub enum Recovery<T> {
    /// A generation decoded; `skipped` lists newer generations that did not,
    /// with the reason each was rejected.
    Loaded {
        /// Generation number the value was restored from.
        generation: u64,
        /// The decoded value.
        value: T,
        /// Newer generations rejected on the way down, newest first.
        skipped: Vec<(u64, String)>,
    },
    /// No generation decoded; the caller must rebuild from cold state.
    ColdRebuild {
        /// Every generation rejected, newest first.
        skipped: Vec<(u64, String)>,
    },
}

impl<T> Recovery<T> {
    /// The decoded value, if any generation was loaded.
    pub fn value(self) -> Option<T> {
        match self {
            Recovery::Loaded { value, .. } => Some(value),
            Recovery::ColdRebuild { .. } => None,
        }
    }

    /// Generations rejected during the walk, newest first.
    pub fn skipped(&self) -> &[(u64, String)] {
        match self {
            Recovery::Loaded { skipped, .. } | Recovery::ColdRebuild { skipped } => skipped,
        }
    }
}

/// A directory of generation-numbered snapshot files with atomic writes,
/// bounded retention and a newest-first recovery ladder. See the module docs.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    next_gen: u64,
    retain: usize,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store directory and resumes generation
    /// numbering after the newest file already present.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::new("create directory", &dir, e))?;
        let mut store = SnapshotStore {
            dir,
            next_gen: 1,
            retain: DEFAULT_RETENTION,
        };
        if let Some(&newest) = store.generations()?.last() {
            store.next_gen = newest + 1;
        }
        Ok(store)
    }

    /// Sets how many generations a save leaves on disk (clamped to ≥ 1).
    #[must_use]
    pub fn with_retention(mut self, retain: usize) -> Self {
        self.retain = retain.max(1);
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of generation `gen` (whether or not it exists).
    pub fn path_of(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("gen-{gen:010}.{EXTENSION}"))
    }

    /// Generation numbers currently on disk, oldest first.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        let entries =
            fs::read_dir(&self.dir).map_err(|e| StoreError::new("list directory", &self.dir, e))?;
        let mut gens = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::new("list directory", &self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(&format!(".{EXTENSION}")))
            else {
                continue;
            };
            if let Ok(gen) = stem.parse::<u64>() {
                gens.push(gen);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Saves `bytes` as the next generation: atomic temp+rename, then prunes
    /// generations beyond the retention bound. Returns the generation number.
    pub fn save(&mut self, bytes: &[u8]) -> Result<u64, StoreError> {
        self.save_faulty(bytes, &mut FaultPlan::none())
    }

    /// [`SnapshotStore::save`] with fault injection: the plan may tear the
    /// write (truncate) or flip one bit before the file is published. The
    /// rename itself stays atomic — injected damage lands in a *complete*
    /// published generation, which is exactly what the recovery ladder must
    /// reject.
    pub fn save_faulty(&mut self, bytes: &[u8], plan: &mut FaultPlan) -> Result<u64, StoreError> {
        let mut bytes = bytes.to_vec();
        if plan.trip(FaultSite::SnapshotTornWrite) && !bytes.is_empty() {
            let keep = plan.draw(FaultSite::SnapshotTornWrite, bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        if plan.trip(FaultSite::SnapshotBitFlip) && !bytes.is_empty() {
            let bit = plan.draw(FaultSite::SnapshotBitFlip, bytes.len() as u64 * 8) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
        }

        let gen = self.next_gen;
        let tmp = self.dir.join(format!("gen-{gen:010}.tmp"));
        let path = self.path_of(gen);
        fs::write(&tmp, &bytes).map_err(|e| StoreError::new("write", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| StoreError::new("rename", &path, e))?;
        self.next_gen += 1;

        // Prune beyond retention; a failed unlink only leaks a stale file.
        let gens = self.generations()?;
        if gens.len() > self.retain {
            for &old in &gens[..gens.len() - self.retain] {
                let _ = fs::remove_file(self.path_of(old));
            }
        }
        Ok(gen)
    }

    /// Walks the recovery ladder: newest generation first, through `decode`,
    /// stopping at the first success. Unreadable files and decode failures
    /// are recorded (not fatal); only listing the directory can error.
    pub fn recover<T>(
        &self,
        mut decode: impl FnMut(&[u8]) -> Result<T, SnapshotError>,
    ) -> Result<Recovery<T>, StoreError> {
        let mut skipped = Vec::new();
        for &gen in self.generations()?.iter().rev() {
            let path = self.path_of(gen);
            let bytes = match fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    skipped.push((gen, format!("read failed: {e}")));
                    continue;
                }
            };
            match decode(&bytes) {
                Ok(value) => {
                    return Ok(Recovery::Loaded {
                        generation: gen,
                        value,
                        skipped,
                    })
                }
                Err(e) => skipped.push((gen, e.to_string())),
            }
        }
        Ok(Recovery::ColdRebuild { skipped })
    }
}
