//! Versioned, dependency-free binary snapshots of the interning containers.
//!
//! A long-running admission service keeps its verdict caches — the mapping
//! cascade's memo transposition table, the interned fingerprints, the
//! anti-monotone index — in memory; a restart would otherwise throw all of
//! that work away and re-run the exact verifier for every query it had
//! already answered. This module defines the byte format those caches are
//! persisted in so a service *warm-starts*: the restored containers are
//! layout-identical to the saved ones (same bucket positions, same
//! replacement state), so every subsequent query takes exactly the probe
//! path — and returns exactly the verdict — it would have taken in the
//! original process.
//!
//! The format is deliberately free of external dependencies (the container
//! building this workspace has no crates.io access): little-endian integers
//! behind a small header and trailer,
//!
//! ```text
//! magic "CPSN" | version u16 | kind [u8; 4] | payload ... | fnv1a64 checksum
//! ```
//!
//! where `kind` names the structure the payload encodes (each persistable
//! type picks a four-byte tag) and the checksum covers header and payload.
//! [`SnapshotWriter`] / [`SnapshotReader`] implement the framing;
//! [`Persist`] is the per-type payload codec, implemented here for the
//! primitives and sequences the containers need and by the containers
//! themselves ([`crate::ZobristKeys`], [`crate::CachedHashIndex`],
//! [`crate::TwoWayTranspositionTable`]).
//!
//! Since format version 2 a payload may additionally be divided into
//! *sections* ([`SnapshotWriter::begin_section`] /
//! [`SnapshotReader::enter_section`]):
//!
//! ```text
//! tag [u8; 4] | body length u64 | fnv1a64 over body | body ...
//! ```
//!
//! Each section carries its own CRC, so a reader localizes corruption to the
//! component it hit ([`SnapshotError::BadSectionChecksum`] names the tag)
//! instead of reporting one opaque whole-file mismatch, and a recovery
//! ladder can report *what* rotted in a rejected generation. Every decode
//! failure — framing, checksum, section, payload — is a typed
//! [`SnapshotError`]; no input, however corrupt, panics the reader.
//!
//! Work counters ([`crate::IndexStats`], [`crate::TtStats`]) are *not*
//! persisted: a restored container counts its new process's work from zero,
//! which is what the warm-vs-cold bench deltas measure. Only behavior is
//! preserved, bit-identically.

use std::fmt;

/// Version of the snapshot framing; bumped on any layout change.
pub const SNAPSHOT_VERSION: u16 = 2;

const MAGIC: [u8; 4] = *b"CPSN";

/// Bytes of a section header: tag, body length, body checksum.
const SECTION_HEADER: usize = 4 + 8 + 8;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The snapshot encodes a different structure than the caller expects.
    BadKind {
        /// Kind tag found in the header.
        found: [u8; 4],
        /// Kind tag the caller asked for.
        expected: [u8; 4],
    },
    /// The checksum over header and payload does not match the trailer.
    BadChecksum,
    /// The payload ended before a read completed.
    UnexpectedEof,
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes {
        /// Number of undecoded payload bytes.
        count: usize,
    },
    /// A section header names a different section than the reader expects.
    BadSectionTag {
        /// Section tag found in the payload.
        found: [u8; 4],
        /// Section tag the caller asked for.
        expected: [u8; 4],
    },
    /// A section's body does not match its recorded checksum.
    BadSectionChecksum {
        /// Tag of the damaged section.
        tag: [u8; 4],
    },
    /// The payload decoded but violates a structural invariant.
    Corrupt {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a cps snapshot (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supported: {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadKind { found, expected } => write!(
                f,
                "snapshot encodes kind {:?}, expected {:?}",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(expected)
            ),
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::UnexpectedEof => write!(f, "snapshot payload truncated"),
            SnapshotError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after snapshot payload")
            }
            SnapshotError::BadSectionTag { found, expected } => write!(
                f,
                "snapshot section tagged {:?}, expected {:?}",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(expected)
            ),
            SnapshotError::BadSectionChecksum { tag } => write!(
                f,
                "checksum mismatch in snapshot section {:?}",
                String::from_utf8_lossy(tag)
            ),
            SnapshotError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash over `bytes` — the integrity checksum of the format.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serializer for one snapshot: header, little-endian payload writes, and a
/// checksum trailer appended by [`SnapshotWriter::finish`].
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    /// Byte offset where the open section's body starts, if one is open.
    section: Option<usize>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the structure tagged `kind`.
    pub fn new(kind: [u8; 4]) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&kind);
        SnapshotWriter { buf, section: None }
    }

    /// Opens a CRC-framed section tagged `tag`; everything written until the
    /// matching [`SnapshotWriter::end_section`] becomes the section body.
    ///
    /// Sections do not nest — the writer side is a programming contract, so
    /// nesting (like unbalanced calls) is a panic, not a runtime error.
    pub fn begin_section(&mut self, tag: [u8; 4]) {
        assert!(
            self.section.is_none(),
            "snapshot sections do not nest: end_section before begin_section"
        );
        self.buf.extend_from_slice(&tag);
        // Placeholders for body length and checksum, patched by end_section.
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        self.section = Some(self.buf.len());
    }

    /// Closes the open section, sealing its length and body checksum.
    pub fn end_section(&mut self) {
        let start = self
            .section
            .take()
            .expect("end_section requires an open section");
        let len = (self.buf.len() - start) as u64;
        let crc = fnv1a64(&self.buf[start..]);
        self.buf[start - 16..start - 8].copy_from_slice(&len.to_le_bytes());
        self.buf[start - 8..start].copy_from_slice(&crc.to_le_bytes());
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (sizes are
    /// platform-independent in the format).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Seals the snapshot: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        assert!(
            self.section.is_none(),
            "finish requires every section to be closed"
        );
        let checksum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Deserializer over a sealed snapshot buffer. [`SnapshotReader::open`]
/// validates the header and checksum up front, the `take_*` methods walk the
/// payload, and [`SnapshotReader::finish`] rejects trailing bytes.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
    /// End offset and tag of the section being read, if one is entered.
    section: Option<(usize, [u8; 4])>,
}

/// Panic-free `[u8; 4]` view of a slice already known to hold 4 bytes.
fn arr4(s: &[u8]) -> Result<[u8; 4], SnapshotError> {
    s.try_into().map_err(|_| SnapshotError::UnexpectedEof)
}

/// Panic-free `[u8; 8]` view of a slice already known to hold 8 bytes.
fn arr8(s: &[u8]) -> Result<[u8; 8], SnapshotError> {
    s.try_into().map_err(|_| SnapshotError::UnexpectedEof)
}

impl<'a> SnapshotReader<'a> {
    /// Opens a snapshot, verifying magic, version, kind and checksum.
    pub fn open(bytes: &'a [u8], kind: [u8; 4]) -> Result<Self, SnapshotError> {
        // magic + version + kind up front, checksum trailer at the end.
        const HEADER: usize = 4 + 2 + 4;
        if bytes.len() < HEADER + 8 {
            return Err(SnapshotError::UnexpectedEof);
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let found = arr4(&bytes[6..10])?;
        if found != kind {
            return Err(SnapshotError::BadKind {
                found,
                expected: kind,
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(arr8(trailer)?);
        if fnv1a64(body) != stored {
            return Err(SnapshotError::BadChecksum);
        }
        Ok(SnapshotReader {
            payload: &body[HEADER..],
            pos: 0,
            section: None,
        })
    }

    /// End of the region reads are currently confined to: the open section's
    /// body if one is entered, the whole payload otherwise.
    fn limit(&self) -> usize {
        match self.section {
            Some((end, _)) => end,
            None => self.payload.len(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.limit())
            .ok_or(SnapshotError::UnexpectedEof)?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Enters the CRC-framed section expected next in the payload, verifying
    /// its tag, its recorded body length and its body checksum. Until
    /// [`SnapshotReader::exit_section`], reads cannot cross the section's
    /// end — a truncated body reads as [`SnapshotError::UnexpectedEof`]
    /// inside the section rather than silently consuming the next one.
    pub fn enter_section(&mut self, tag: [u8; 4]) -> Result<(), SnapshotError> {
        assert!(
            self.section.is_none(),
            "snapshot sections do not nest: exit_section before enter_section"
        );
        if self.payload.len() - self.pos < SECTION_HEADER {
            return Err(SnapshotError::UnexpectedEof);
        }
        let found = arr4(&self.payload[self.pos..self.pos + 4])?;
        if found != tag {
            return Err(SnapshotError::BadSectionTag {
                found,
                expected: tag,
            });
        }
        let len = u64::from_le_bytes(arr8(&self.payload[self.pos + 4..self.pos + 12])?);
        let crc = u64::from_le_bytes(arr8(&self.payload[self.pos + 12..self.pos + 20])?);
        let len = usize::try_from(len).map_err(|_| SnapshotError::UnexpectedEof)?;
        let body_start = self.pos + SECTION_HEADER;
        let body_end = body_start
            .checked_add(len)
            .filter(|&end| end <= self.payload.len())
            .ok_or(SnapshotError::UnexpectedEof)?;
        if fnv1a64(&self.payload[body_start..body_end]) != crc {
            return Err(SnapshotError::BadSectionChecksum { tag });
        }
        self.pos = body_start;
        self.section = Some((body_end, tag));
        Ok(())
    }

    /// Leaves the current section, rejecting undecoded body bytes the same
    /// way [`SnapshotReader::finish`] rejects trailing payload bytes.
    pub fn exit_section(&mut self) -> Result<(), SnapshotError> {
        let (end, tag) = self
            .section
            .take()
            .expect("exit_section requires an entered section");
        if self.pos != end {
            return Err(SnapshotError::Corrupt {
                reason: format!(
                    "{} undecoded bytes at the end of snapshot section {:?}",
                    end - self.pos,
                    String::from_utf8_lossy(&tag)
                ),
            });
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(arr4(self.take(4)?)?))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(arr8(self.take(8)?)?))
    }

    /// Reads a `usize` stored as a `u64`, rejecting values the platform
    /// cannot represent.
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.take_u64()?).map_err(|_| SnapshotError::Corrupt {
            reason: "size exceeds the platform's usize".to_string(),
        })
    }

    /// Reads a boolean, rejecting bytes other than 0 and 1.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt {
                reason: format!("invalid boolean byte {other}"),
            }),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.take_usize()?;
        self.take(len)
    }

    /// Asserts the whole payload was consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        assert!(
            self.section.is_none(),
            "finish requires every section to be exited"
        );
        if self.pos != self.payload.len() {
            return Err(SnapshotError::TrailingBytes {
                count: self.payload.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Payload codec for one value: how a type writes itself into a snapshot and
/// reconstructs itself from one. Compound structures persist their fields in
/// a fixed order; `restore` must read exactly what `persist` wrote.
pub trait Persist: Sized {
    /// Appends this value to the snapshot payload.
    fn persist(&self, w: &mut SnapshotWriter);

    /// Reads one value of this type from the snapshot payload.
    ///
    /// # Errors
    ///
    /// Propagates truncation and invariant violations as [`SnapshotError`].
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

impl Persist for u32 {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u32(*self);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u32()
    }
}

impl Persist for u64 {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u64()
    }
}

impl Persist for usize {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_usize(*self);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_usize()
    }
}

impl Persist for bool {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_bool(*self);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_bool()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for item in self {
            item.persist(w);
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_usize()?;
        // Guard allocation against corrupt length prefixes: every element
        // occupies at least one payload byte.
        let mut items = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            items.push(T::restore(r)?);
        }
        Ok(items)
    }
}

impl Persist for String {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_bytes(self.as_bytes());
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        String::from_utf8(r.take_bytes()?.to_vec()).map_err(|_| SnapshotError::Corrupt {
            reason: "string payload is not UTF-8".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIND: [u8; 4] = *b"TEST";

    #[test]
    fn primitives_roundtrip() {
        let mut w = SnapshotWriter::new(KIND);
        42u32.persist(&mut w);
        u64::MAX.persist(&mut w);
        7usize.persist(&mut w);
        true.persist(&mut w);
        false.persist(&mut w);
        vec![1u32, 2, 3].persist(&mut w);
        "héllo".to_string().persist(&mut w);
        let bytes = w.finish();

        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert_eq!(u32::restore(&mut r).unwrap(), 42);
        assert_eq!(u64::restore(&mut r).unwrap(), u64::MAX);
        assert_eq!(usize::restore(&mut r).unwrap(), 7);
        assert!(bool::restore(&mut r).unwrap());
        assert!(!bool::restore(&mut r).unwrap());
        assert_eq!(Vec::<u32>::restore(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(String::restore(&mut r).unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn header_violations_are_reported() {
        let bytes = {
            let mut w = SnapshotWriter::new(KIND);
            1u32.persist(&mut w);
            w.finish()
        };

        assert_eq!(
            SnapshotReader::open(&bytes[..4], KIND).unwrap_err(),
            SnapshotError::UnexpectedEof
        );

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SnapshotReader::open(&bad_magic, KIND).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        // The version bytes are covered by the checksum, but the version is
        // rejected before the checksum is consulted.
        assert!(matches!(
            SnapshotReader::open(&bad_version, KIND).unwrap_err(),
            SnapshotError::BadVersion { .. }
        ));

        assert!(matches!(
            SnapshotReader::open(&bytes, *b"OTHR").unwrap_err(),
            SnapshotError::BadKind { .. }
        ));

        let mut flipped = bytes.clone();
        let last_payload = flipped.len() - 9;
        flipped[last_payload] ^= 0x40;
        assert_eq!(
            SnapshotReader::open(&flipped, KIND).unwrap_err(),
            SnapshotError::BadChecksum
        );
    }

    #[test]
    fn payload_violations_are_reported() {
        let bytes = {
            let mut w = SnapshotWriter::new(KIND);
            5u32.persist(&mut w);
            w.finish()
        };
        // Reading more than was written: EOF.
        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert_eq!(u32::restore(&mut r).unwrap(), 5);
        assert_eq!(
            u32::restore(&mut r).unwrap_err(),
            SnapshotError::UnexpectedEof
        );
        // Reading less: trailing bytes.
        let r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert_eq!(
            r.finish().unwrap_err(),
            SnapshotError::TrailingBytes { count: 4 }
        );
        // Invalid boolean byte.
        let bytes = {
            let mut w = SnapshotWriter::new(KIND);
            w.put_u8(3);
            w.finish()
        };
        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert!(matches!(
            bool::restore(&mut r).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn errors_render() {
        for err in [
            SnapshotError::BadMagic,
            SnapshotError::BadVersion { found: 9 },
            SnapshotError::BadKind {
                found: *b"AAAA",
                expected: KIND,
            },
            SnapshotError::BadChecksum,
            SnapshotError::UnexpectedEof,
            SnapshotError::TrailingBytes { count: 3 },
            SnapshotError::BadSectionTag {
                found: *b"AAAA",
                expected: *b"BBBB",
            },
            SnapshotError::BadSectionChecksum { tag: *b"MEMO" },
            SnapshotError::Corrupt {
                reason: "x".to_string(),
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn sections_roundtrip() {
        let mut w = SnapshotWriter::new(KIND);
        w.begin_section(*b"ONE ");
        7u32.persist(&mut w);
        w.end_section();
        w.begin_section(*b"TWO ");
        vec![1u64, 2].persist(&mut w);
        w.end_section();
        // An empty section is legal.
        w.begin_section(*b"NONE");
        w.end_section();
        let bytes = w.finish();

        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        r.enter_section(*b"ONE ").unwrap();
        assert_eq!(u32::restore(&mut r).unwrap(), 7);
        r.exit_section().unwrap();
        r.enter_section(*b"TWO ").unwrap();
        assert_eq!(Vec::<u64>::restore(&mut r).unwrap(), vec![1, 2]);
        r.exit_section().unwrap();
        r.enter_section(*b"NONE").unwrap();
        r.exit_section().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn section_violations_are_reported() {
        let bytes = {
            let mut w = SnapshotWriter::new(KIND);
            w.begin_section(*b"ONE ");
            7u32.persist(&mut w);
            w.end_section();
            w.finish()
        };

        // Wrong expected tag.
        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert_eq!(
            r.enter_section(*b"TWO ").unwrap_err(),
            SnapshotError::BadSectionTag {
                found: *b"ONE ",
                expected: *b"TWO ",
            }
        );

        // Reads cannot cross the section's end.
        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        r.enter_section(*b"ONE ").unwrap();
        assert_eq!(u32::restore(&mut r).unwrap(), 7);
        assert_eq!(
            u32::restore(&mut r).unwrap_err(),
            SnapshotError::UnexpectedEof
        );

        // Leaving body bytes undecoded is rejected at exit.
        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        r.enter_section(*b"ONE ").unwrap();
        assert!(matches!(
            r.exit_section().unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));

        // A damaged body is pinned on its section: flip a body bit and
        // re-seal the outer checksum so only the section CRC can object.
        let mut damaged = bytes.clone();
        let body_byte = damaged.len() - 8 - 2;
        damaged[body_byte] ^= 0x10;
        let crc_at = damaged.len() - 8;
        let reseal = fnv1a64(&damaged[..crc_at]);
        damaged[crc_at..].copy_from_slice(&reseal.to_le_bytes());
        let mut r = SnapshotReader::open(&damaged, KIND).unwrap();
        assert_eq!(
            r.enter_section(*b"ONE ").unwrap_err(),
            SnapshotError::BadSectionChecksum { tag: *b"ONE " }
        );

        // A truncated section header or body never panics.
        for cut in 0..bytes.len() {
            let mut truncated = bytes[..cut].to_vec();
            if truncated.len() >= 10 {
                // Re-seal so the cut reaches the section logic when long
                // enough to pass the outer checksum gate.
                let crc = fnv1a64(&truncated);
                truncated.extend_from_slice(&crc.to_le_bytes());
            }
            if let Ok(mut r) = SnapshotReader::open(&truncated, KIND) {
                let _ = r.enter_section(*b"ONE ");
            }
        }
    }
}
