//! Versioned, dependency-free binary snapshots of the interning containers.
//!
//! A long-running admission service keeps its verdict caches — the mapping
//! cascade's memo transposition table, the interned fingerprints, the
//! anti-monotone index — in memory; a restart would otherwise throw all of
//! that work away and re-run the exact verifier for every query it had
//! already answered. This module defines the byte format those caches are
//! persisted in so a service *warm-starts*: the restored containers are
//! layout-identical to the saved ones (same bucket positions, same
//! replacement state), so every subsequent query takes exactly the probe
//! path — and returns exactly the verdict — it would have taken in the
//! original process.
//!
//! The format is deliberately free of external dependencies (the container
//! building this workspace has no crates.io access): little-endian integers
//! behind a small header and trailer,
//!
//! ```text
//! magic "CPSN" | version u16 | kind [u8; 4] | payload ... | fnv1a64 checksum
//! ```
//!
//! where `kind` names the structure the payload encodes (each persistable
//! type picks a four-byte tag) and the checksum covers header and payload.
//! [`SnapshotWriter`] / [`SnapshotReader`] implement the framing;
//! [`Persist`] is the per-type payload codec, implemented here for the
//! primitives and sequences the containers need and by the containers
//! themselves ([`crate::ZobristKeys`], [`crate::CachedHashIndex`],
//! [`crate::TwoWayTranspositionTable`]).
//!
//! Work counters ([`crate::IndexStats`], [`crate::TtStats`]) are *not*
//! persisted: a restored container counts its new process's work from zero,
//! which is what the warm-vs-cold bench deltas measure. Only behavior is
//! preserved, bit-identically.

use std::fmt;

/// Version of the snapshot framing; bumped on any layout change.
pub const SNAPSHOT_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"CPSN";

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The snapshot encodes a different structure than the caller expects.
    BadKind {
        /// Kind tag found in the header.
        found: [u8; 4],
        /// Kind tag the caller asked for.
        expected: [u8; 4],
    },
    /// The checksum over header and payload does not match the trailer.
    BadChecksum,
    /// The payload ended before a read completed.
    UnexpectedEof,
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes {
        /// Number of undecoded payload bytes.
        count: usize,
    },
    /// The payload decoded but violates a structural invariant.
    Corrupt {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a cps snapshot (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supported: {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadKind { found, expected } => write!(
                f,
                "snapshot encodes kind {:?}, expected {:?}",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(expected)
            ),
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::UnexpectedEof => write!(f, "snapshot payload truncated"),
            SnapshotError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after snapshot payload")
            }
            SnapshotError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash over `bytes` — the integrity checksum of the format.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serializer for one snapshot: header, little-endian payload writes, and a
/// checksum trailer appended by [`SnapshotWriter::finish`].
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the structure tagged `kind`.
    pub fn new(kind: [u8; 4]) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&kind);
        SnapshotWriter { buf }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (sizes are
    /// platform-independent in the format).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Seals the snapshot: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Deserializer over a sealed snapshot buffer. [`SnapshotReader::open`]
/// validates the header and checksum up front, the `take_*` methods walk the
/// payload, and [`SnapshotReader::finish`] rejects trailing bytes.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a snapshot, verifying magic, version, kind and checksum.
    pub fn open(bytes: &'a [u8], kind: [u8; 4]) -> Result<Self, SnapshotError> {
        // magic + version + kind up front, checksum trailer at the end.
        const HEADER: usize = 4 + 2 + 4;
        if bytes.len() < HEADER + 8 {
            return Err(SnapshotError::UnexpectedEof);
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let found: [u8; 4] = bytes[6..10].try_into().expect("slice of length 4");
        if found != kind {
            return Err(SnapshotError::BadKind {
                found,
                expected: kind,
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("slice of length 8"));
        if fnv1a64(body) != stored {
            return Err(SnapshotError::BadChecksum);
        }
        Ok(SnapshotReader {
            payload: &body[HEADER..],
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.payload.len())
            .ok_or(SnapshotError::UnexpectedEof)?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("slice of length 4"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("slice of length 8"),
        ))
    }

    /// Reads a `usize` stored as a `u64`, rejecting values the platform
    /// cannot represent.
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.take_u64()?).map_err(|_| SnapshotError::Corrupt {
            reason: "size exceeds the platform's usize".to_string(),
        })
    }

    /// Reads a boolean, rejecting bytes other than 0 and 1.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt {
                reason: format!("invalid boolean byte {other}"),
            }),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.take_usize()?;
        self.take(len)
    }

    /// Asserts the whole payload was consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.payload.len() {
            return Err(SnapshotError::TrailingBytes {
                count: self.payload.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Payload codec for one value: how a type writes itself into a snapshot and
/// reconstructs itself from one. Compound structures persist their fields in
/// a fixed order; `restore` must read exactly what `persist` wrote.
pub trait Persist: Sized {
    /// Appends this value to the snapshot payload.
    fn persist(&self, w: &mut SnapshotWriter);

    /// Reads one value of this type from the snapshot payload.
    ///
    /// # Errors
    ///
    /// Propagates truncation and invariant violations as [`SnapshotError`].
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

impl Persist for u32 {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u32(*self);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u32()
    }
}

impl Persist for u64 {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u64()
    }
}

impl Persist for usize {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_usize(*self);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_usize()
    }
}

impl Persist for bool {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_bool(*self);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_bool()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for item in self {
            item.persist(w);
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_usize()?;
        // Guard allocation against corrupt length prefixes: every element
        // occupies at least one payload byte.
        let mut items = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            items.push(T::restore(r)?);
        }
        Ok(items)
    }
}

impl Persist for String {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_bytes(self.as_bytes());
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        String::from_utf8(r.take_bytes()?.to_vec()).map_err(|_| SnapshotError::Corrupt {
            reason: "string payload is not UTF-8".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIND: [u8; 4] = *b"TEST";

    #[test]
    fn primitives_roundtrip() {
        let mut w = SnapshotWriter::new(KIND);
        42u32.persist(&mut w);
        u64::MAX.persist(&mut w);
        7usize.persist(&mut w);
        true.persist(&mut w);
        false.persist(&mut w);
        vec![1u32, 2, 3].persist(&mut w);
        "héllo".to_string().persist(&mut w);
        let bytes = w.finish();

        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert_eq!(u32::restore(&mut r).unwrap(), 42);
        assert_eq!(u64::restore(&mut r).unwrap(), u64::MAX);
        assert_eq!(usize::restore(&mut r).unwrap(), 7);
        assert!(bool::restore(&mut r).unwrap());
        assert!(!bool::restore(&mut r).unwrap());
        assert_eq!(Vec::<u32>::restore(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(String::restore(&mut r).unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn header_violations_are_reported() {
        let bytes = {
            let mut w = SnapshotWriter::new(KIND);
            1u32.persist(&mut w);
            w.finish()
        };

        assert_eq!(
            SnapshotReader::open(&bytes[..4], KIND).unwrap_err(),
            SnapshotError::UnexpectedEof
        );

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SnapshotReader::open(&bad_magic, KIND).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        // The version bytes are covered by the checksum, but the version is
        // rejected before the checksum is consulted.
        assert!(matches!(
            SnapshotReader::open(&bad_version, KIND).unwrap_err(),
            SnapshotError::BadVersion { .. }
        ));

        assert!(matches!(
            SnapshotReader::open(&bytes, *b"OTHR").unwrap_err(),
            SnapshotError::BadKind { .. }
        ));

        let mut flipped = bytes.clone();
        let last_payload = flipped.len() - 9;
        flipped[last_payload] ^= 0x40;
        assert_eq!(
            SnapshotReader::open(&flipped, KIND).unwrap_err(),
            SnapshotError::BadChecksum
        );
    }

    #[test]
    fn payload_violations_are_reported() {
        let bytes = {
            let mut w = SnapshotWriter::new(KIND);
            5u32.persist(&mut w);
            w.finish()
        };
        // Reading more than was written: EOF.
        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert_eq!(u32::restore(&mut r).unwrap(), 5);
        assert_eq!(
            u32::restore(&mut r).unwrap_err(),
            SnapshotError::UnexpectedEof
        );
        // Reading less: trailing bytes.
        let r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert_eq!(
            r.finish().unwrap_err(),
            SnapshotError::TrailingBytes { count: 4 }
        );
        // Invalid boolean byte.
        let bytes = {
            let mut w = SnapshotWriter::new(KIND);
            w.put_u8(3);
            w.finish()
        };
        let mut r = SnapshotReader::open(&bytes, KIND).unwrap();
        assert!(matches!(
            bool::restore(&mut r).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    #[test]
    fn errors_render() {
        for err in [
            SnapshotError::BadMagic,
            SnapshotError::BadVersion { found: 9 },
            SnapshotError::BadKind {
                found: *b"AAAA",
                expected: KIND,
            },
            SnapshotError::BadChecksum,
            SnapshotError::UnexpectedEof,
            SnapshotError::TrailingBytes { count: 3 },
            SnapshotError::Corrupt {
                reason: "x".to_string(),
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
