//! Zobrist key material: one pseudo-random 64-bit key per
//! `(slot index, code)` pair, combined by XOR into a state fingerprint.
//!
//! The key function is a fixed bijective mixer (the splitmix64 finalizer) of
//! the packed `(slot, code)` pair, so keys need no stored tables to be
//! well-defined — [`ZobristKeys`] merely *caches* them for hot, small code
//! spaces. Determinism across runs and processes is part of the contract:
//! fingerprints recorded in one session (memo snapshots, bench reports)
//! remain comparable in the next.

/// Per-slot key tables are cached up to this many codes; larger codes fall
/// back to [`zobrist_key`] (bit-identical values, just not prefetched).
const TABLE_CAP: usize = 1024;

/// The Zobrist key of `(slot, code)`: the splitmix64 finalizer applied to
/// the packed pair. Bijective in the packed input, so distinct pairs below
/// `2^32` each get a distinct, well-mixed key.
#[inline]
pub fn zobrist_key(slot: usize, code: u32) -> u64 {
    let mut z = (((slot as u64) << 32) | u64::from(code)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Position-sensitive fingerprint of an id sequence: the XOR of
/// `zobrist_key(position, id)` over the sequence. Order matters (the key
/// depends on the position), and extending a sequence by one element is one
/// extra XOR — the incremental update the mapping cascade's probe keys use.
#[inline]
pub fn seq_fingerprint(ids: &[u32]) -> u64 {
    ids.iter()
        .enumerate()
        .fold(0, |fp, (pos, &id)| fp ^ zobrist_key(pos, id))
}

/// Cached Zobrist key material for a fixed slot layout.
///
/// Built once per model from the per-slot code spaces; [`ZobristKeys::key`]
/// serves cached codes from a flat table and computes the rest on the fly,
/// returning exactly [`zobrist_key`] in both cases.
#[derive(Debug, Clone, Default)]
pub struct ZobristKeys {
    tables: Vec<Box<[u64]>>,
}

impl ZobristKeys {
    /// Builds key tables for `code_spaces[slot]` codes per slot, capping each
    /// table at an internal size bound.
    pub fn new(code_spaces: impl IntoIterator<Item = u64>) -> Self {
        let tables = code_spaces
            .into_iter()
            .enumerate()
            .map(|(slot, space)| {
                let len = (space.min(TABLE_CAP as u64)) as usize;
                (0..len)
                    .map(|code| zobrist_key(slot, code as u32))
                    .collect()
            })
            .collect();
        ZobristKeys { tables }
    }

    /// Number of slots the key material covers.
    pub fn slots(&self) -> usize {
        self.tables.len()
    }

    /// The key of `(slot, code)` — identical to [`zobrist_key`].
    #[inline]
    pub fn key(&self, slot: usize, code: u32) -> u64 {
        match self.tables[slot].get(code as usize) {
            Some(&k) => k,
            None => zobrist_key(slot, code),
        }
    }

    /// From-scratch fingerprint of a full code vector: the XOR of one key per
    /// slot. The incremental path must always agree with this (the engines
    /// `debug_assert` it on every insert).
    pub fn fingerprint(&self, codes: impl IntoIterator<Item = u32>) -> u64 {
        codes
            .into_iter()
            .enumerate()
            .fold(0, |fp, (slot, code)| fp ^ self.key(slot, code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cached_and_stateless_keys_agree() {
        let keys = ZobristKeys::new([4u64, 70_000, 1]);
        assert_eq!(keys.slots(), 3);
        for slot in 0..3 {
            for code in [0u32, 1, 3, 1023, 1024, 65_535, 69_999] {
                assert_eq!(keys.key(slot, code), zobrist_key(slot, code));
            }
        }
    }

    #[test]
    fn keys_are_position_sensitive() {
        // Swapping two distinct codes across slots must change the XOR —
        // the property the symmetry sort's XOR-out/in fix relies on.
        let a = zobrist_key(0, 7) ^ zobrist_key(1, 9);
        let b = zobrist_key(0, 9) ^ zobrist_key(1, 7);
        assert_ne!(a, b);
        assert_ne!(zobrist_key(0, 0), zobrist_key(1, 0));
        assert_ne!(zobrist_key(0, 0), zobrist_key(0, 1));
    }

    #[test]
    fn seq_fingerprint_is_incremental_and_order_sensitive() {
        let fp = seq_fingerprint(&[3, 1, 4]);
        assert_eq!(fp, seq_fingerprint(&[3, 1]) ^ zobrist_key(2, 4));
        assert_ne!(fp, seq_fingerprint(&[4, 1, 3]));
        assert_eq!(seq_fingerprint(&[]), 0);
    }

    proptest! {
        // (a) of the hash-soundness checklist, at the key layer: after an
        // arbitrary sequence of in-place code steps and sub-range sorts
        // (the engines' two mutation kinds), the incrementally maintained
        // fingerprint equals the from-scratch hash.
        #[test]
        fn incremental_fingerprint_matches_from_scratch(seed in 0u64..1_000_000) {
            let mut rng = proptest::TestRng::new(seed);
            let n = 2 + rng.next_below(7) as usize;
            let space = 3 + rng.next_below(2000);
            let keys = ZobristKeys::new(std::iter::repeat_n(space, n));
            let mut codes: Vec<u32> =
                (0..n).map(|_| rng.next_below(space) as u32).collect();
            let mut fp = keys.fingerprint(codes.iter().copied());

            for _ in 0..40 {
                if rng.next_below(4) == 0 {
                    // Symmetry-style sort of a random sub-range: XOR out/in
                    // only the slots the sort permutes.
                    let lo = rng.next_below(n as u64) as usize;
                    let hi = lo + rng.next_below((n - lo) as u64 + 1) as usize;
                    let before = codes[lo..hi].to_vec();
                    codes[lo..hi].sort_unstable();
                    for (off, (&old, &new)) in
                        before.iter().zip(&codes[lo..hi]).enumerate()
                    {
                        if old != new {
                            fp ^= keys.key(lo + off, old) ^ keys.key(lo + off, new);
                        }
                    }
                } else {
                    // An in-place cell step.
                    let slot = rng.next_below(n as u64) as usize;
                    let new = rng.next_below(space) as u32;
                    if new != codes[slot] {
                        fp ^= keys.key(slot, codes[slot]) ^ keys.key(slot, new);
                        codes[slot] = new;
                    }
                }
                prop_assert_eq!(fp, keys.fingerprint(codes.iter().copied()));
            }
        }
    }
}
