//! Zobrist key material: one pseudo-random 64-bit key per
//! `(slot index, code)` pair, combined by XOR into a state fingerprint.
//!
//! The key function is a fixed bijective mixer (the splitmix64 finalizer) of
//! the packed `(slot, code)` pair, so keys need no stored tables to be
//! well-defined — [`ZobristKeys`] merely *caches* them for hot, small code
//! spaces. Determinism across runs and processes is part of the contract:
//! fingerprints recorded in one session (memo snapshots, bench reports)
//! remain comparable in the next.

use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Per-slot key tables are cached up to this many codes; larger codes fall
/// back to [`zobrist_key`] (bit-identical values, just not prefetched).
const TABLE_CAP: usize = 1024;

/// Snapshot kind tag of [`ZobristKeys`].
const KIND: [u8; 4] = *b"ZOBR";

/// The Zobrist key of `(slot, code)`: the splitmix64 finalizer applied to
/// the packed pair. Bijective in the packed input, so distinct pairs below
/// `2^32` each get a distinct, well-mixed key.
#[inline]
pub fn zobrist_key(slot: usize, code: u32) -> u64 {
    let mut z = (((slot as u64) << 32) | u64::from(code)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Position-sensitive fingerprint of an id sequence: the XOR of
/// `zobrist_key(position, id)` over the sequence. Order matters (the key
/// depends on the position), and extending a sequence by one element is one
/// extra XOR — the incremental update the mapping cascade's probe keys use.
#[inline]
pub fn seq_fingerprint(ids: &[u32]) -> u64 {
    ids.iter()
        .enumerate()
        .fold(0, |fp, (pos, &id)| fp ^ zobrist_key(pos, id))
}

/// Cached Zobrist key material for a fixed slot layout.
///
/// Built once per model from the per-slot code spaces; [`ZobristKeys::key`]
/// serves cached codes from a flat table and computes the rest on the fly,
/// returning exactly [`zobrist_key`] in both cases.
#[derive(Debug, Clone, Default)]
pub struct ZobristKeys {
    tables: Vec<Box<[u64]>>,
}

impl ZobristKeys {
    /// Builds key tables for `code_spaces[slot]` codes per slot, capping each
    /// table at an internal size bound.
    pub fn new(code_spaces: impl IntoIterator<Item = u64>) -> Self {
        let tables = code_spaces
            .into_iter()
            .enumerate()
            .map(|(slot, space)| {
                let len = (space.min(TABLE_CAP as u64)) as usize;
                (0..len)
                    .map(|code| zobrist_key(slot, code as u32))
                    .collect()
            })
            .collect();
        ZobristKeys { tables }
    }

    /// Number of slots the key material covers.
    pub fn slots(&self) -> usize {
        self.tables.len()
    }

    /// The key of `(slot, code)` — identical to [`zobrist_key`].
    #[inline]
    pub fn key(&self, slot: usize, code: u32) -> u64 {
        match self.tables[slot].get(code as usize) {
            Some(&k) => k,
            None => zobrist_key(slot, code),
        }
    }

    /// From-scratch fingerprint of a full code vector: the XOR of one key per
    /// slot. The incremental path must always agree with this (the engines
    /// `debug_assert` it on every insert).
    pub fn fingerprint(&self, codes: impl IntoIterator<Item = u32>) -> u64 {
        codes
            .into_iter()
            .enumerate()
            .fold(0, |fp, (slot, code)| fp ^ self.key(slot, code))
    }

    /// Writes the key material into a snapshot payload. Keys are a fixed
    /// bijective function of `(slot, code)`, so only the per-slot table
    /// lengths need to be stored — restore re-derives the cached values.
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.tables.len());
        for table in &self.tables {
            w.put_usize(table.len());
        }
    }

    /// Reads key material previously written by
    /// [`ZobristKeys::write_snapshot`]. The restored keys are bit-identical
    /// to the saved ones (both are [`zobrist_key`] values).
    ///
    /// # Errors
    ///
    /// Propagates payload truncation or a table length beyond the cache cap.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let slots = r.take_usize()?;
        let mut lens = Vec::with_capacity(slots.min(1 << 20));
        for _ in 0..slots {
            let len = r.take_usize()?;
            if len > TABLE_CAP {
                return Err(SnapshotError::Corrupt {
                    reason: format!("zobrist table length {len} exceeds the cache cap {TABLE_CAP}"),
                });
            }
            lens.push(len as u64);
        }
        Ok(ZobristKeys::new(lens))
    }

    /// Serializes the key material as a standalone snapshot.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(KIND);
        self.write_snapshot(&mut w);
        w.finish()
    }

    /// Restores key material from [`ZobristKeys::to_snapshot_bytes`] output.
    ///
    /// # Errors
    ///
    /// Propagates framing and payload violations as [`SnapshotError`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, KIND)?;
        let keys = ZobristKeys::read_snapshot(&mut r)?;
        r.finish()?;
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cached_and_stateless_keys_agree() {
        let keys = ZobristKeys::new([4u64, 70_000, 1]);
        assert_eq!(keys.slots(), 3);
        for slot in 0..3 {
            for code in [0u32, 1, 3, 1023, 1024, 65_535, 69_999] {
                assert_eq!(keys.key(slot, code), zobrist_key(slot, code));
            }
        }
    }

    #[test]
    fn keys_are_position_sensitive() {
        // Swapping two distinct codes across slots must change the XOR —
        // the property the symmetry sort's XOR-out/in fix relies on.
        let a = zobrist_key(0, 7) ^ zobrist_key(1, 9);
        let b = zobrist_key(0, 9) ^ zobrist_key(1, 7);
        assert_ne!(a, b);
        assert_ne!(zobrist_key(0, 0), zobrist_key(1, 0));
        assert_ne!(zobrist_key(0, 0), zobrist_key(0, 1));
    }

    #[test]
    fn seq_fingerprint_is_incremental_and_order_sensitive() {
        let fp = seq_fingerprint(&[3, 1, 4]);
        assert_eq!(fp, seq_fingerprint(&[3, 1]) ^ zobrist_key(2, 4));
        assert_ne!(fp, seq_fingerprint(&[4, 1, 3]));
        assert_eq!(seq_fingerprint(&[]), 0);
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let keys = ZobristKeys::new([4u64, 70_000, 1, 0]);
        let restored = ZobristKeys::from_snapshot_bytes(&keys.to_snapshot_bytes()).unwrap();
        assert_eq!(restored.slots(), keys.slots());
        for slot in 0..keys.slots() {
            for code in [0u32, 1, 1023, 1024, 69_999] {
                assert_eq!(restored.key(slot, code), keys.key(slot, code));
            }
        }
        // The re-serialized snapshot is byte-identical.
        assert_eq!(restored.to_snapshot_bytes(), keys.to_snapshot_bytes());
        // An oversized table length is rejected rather than re-cached.
        let mut w = crate::snapshot::SnapshotWriter::new(*b"ZOBR");
        w.put_usize(1);
        w.put_usize(TABLE_CAP + 1);
        assert!(matches!(
            ZobristKeys::from_snapshot_bytes(&w.finish()).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }

    proptest! {
        // (a) of the hash-soundness checklist, at the key layer: after an
        // arbitrary sequence of in-place code steps and sub-range sorts
        // (the engines' two mutation kinds), the incrementally maintained
        // fingerprint equals the from-scratch hash.
        #[test]
        fn incremental_fingerprint_matches_from_scratch(seed in 0u64..1_000_000) {
            let mut rng = proptest::TestRng::new(seed);
            let n = 2 + rng.next_below(7) as usize;
            let space = 3 + rng.next_below(2000);
            let keys = ZobristKeys::new(std::iter::repeat_n(space, n));
            let mut codes: Vec<u32> =
                (0..n).map(|_| rng.next_below(space) as u32).collect();
            let mut fp = keys.fingerprint(codes.iter().copied());

            for _ in 0..40 {
                if rng.next_below(4) == 0 {
                    // Symmetry-style sort of a random sub-range: XOR out/in
                    // only the slots the sort permutes.
                    let lo = rng.next_below(n as u64) as usize;
                    let hi = lo + rng.next_below((n - lo) as u64 + 1) as usize;
                    let before = codes[lo..hi].to_vec();
                    codes[lo..hi].sort_unstable();
                    for (off, (&old, &new)) in
                        before.iter().zip(&codes[lo..hi]).enumerate()
                    {
                        if old != new {
                            fp ^= keys.key(lo + off, old) ^ keys.key(lo + off, new);
                        }
                    }
                } else {
                    // An in-place cell step.
                    let slot = rng.next_below(n as u64) as usize;
                    let new = rng.next_below(space) as u32;
                    if new != codes[slot] {
                        fp ^= keys.key(slot, codes[slot]) ^ keys.key(slot, new);
                        codes[slot] = new;
                    }
                }
                prop_assert_eq!(fp, keys.fingerprint(codes.iter().copied()));
            }
        }
    }
}
