//! Incremental-hash interning shared by the workspace's state engines.
//!
//! The exact engines built around interned packed states — the slot-sharing
//! verifier (`cps-verify::SlotVerifyEngine`), the zone-graph explorer
//! (`cps-ta::ZoneGraphExplorer`) and the mapping cascade's memo tables
//! (`cps-map::MapExplorerEngine`) — all used to re-hash an *entire* state
//! vector on every intern probe and re-hash the *entire* arena on every
//! growth of their open-addressing tables. This crate factors the fix out
//! into three pieces they share:
//!
//! * [`zobrist_key`] / [`ZobristKeys`] — Zobrist-style key material keyed by
//!   `(slot index, cell/location code)`. A state's 64-bit fingerprint is the
//!   XOR of one key per slot, so a step that changes `k` slots updates the
//!   fingerprint with `2k` XORs instead of re-mixing all `n` words — and a
//!   within-run symmetry sort only XORs out/in the slots it actually
//!   permutes. [`ZobristKeys`] caches the key material in per-slot tables for
//!   small code spaces and falls back to the stateless mix above a cap, with
//!   bit-identical values either way.
//! * [`CachedHashIndex`] — an open-addressing intern index that stores each
//!   entry's 64-bit hash next to its dense id. Probes compare the cached
//!   hash before touching the interned words (almost every collision is
//!   rejected without a memory walk), and growth re-buckets from the cached
//!   hashes instead of re-hashing the arena. Exact word equality remains the
//!   final test on every hash match, so forced collisions (equal fingerprint,
//!   different words) are still distinguished — soundness never rests on the
//!   hash.
//! * [`TwoWayTranspositionTable`] — a bounded verdict cache with the classic
//!   two-way replacement scheme (a depth-preferred way plus an always-replace
//!   way, the takkerus minimax-table idiom). Entries carry their full key and
//!   are only returned on an exact key match, so a bounded table changes
//!   memory usage, never verdicts.
//!
//! Every structure counts its own work ([`IndexStats`], [`TtStats`]): probes,
//! cached-hash hits and skips, growth re-buckets and replacements, which the
//! engines surface through `VerifyStats` / `TierStats` and the `BENCH_*.json`
//! reports.
//!
//! For long-running services the containers also persist: [`snapshot`]
//! defines a versioned, dependency-free binary format (magic, kind tag,
//! checksum), and each container offers layout-preserving
//! `write_snapshot`/`read_snapshot` plus standalone
//! `to_snapshot_bytes`/`from_snapshot_bytes`, so an admission service
//! warm-starts across restarts with bit-identical probe paths and verdicts.
//! [`store`] adds the crash-safety layer on disk: atomic temp+rename writes,
//! generation-numbered rotation with bounded retention, and a recovery
//! ladder (latest → previous generations → cold rebuild) that treats
//! corruption as data, never a panic.

pub mod snapshot;
pub mod store;

mod index;
mod tt;
mod zobrist;

pub use index::{CachedHashIndex, IndexStats};
pub use snapshot::{Persist, SnapshotError, SnapshotReader, SnapshotWriter, SNAPSHOT_VERSION};
pub use store::{Recovery, SnapshotStore, StoreError, DEFAULT_RETENTION};
pub use tt::{TtStats, TwoWayTranspositionTable};
pub use zobrist::{seq_fingerprint, zobrist_key, ZobristKeys};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CachedHashIndex>();
        assert_send_sync::<IndexStats>();
        assert_send_sync::<ZobristKeys>();
        assert_send_sync::<TwoWayTranspositionTable<Vec<u32>, bool>>();
        assert_send_sync::<SnapshotStore>();
        assert_send_sync::<StoreError>();
        assert_send_sync::<Recovery<Vec<u8>>>();
    }
}
