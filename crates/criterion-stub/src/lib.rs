//! A tiny, dependency-free, offline stand-in for the [`criterion`] crate.
//!
//! The container building this workspace cannot reach crates.io, so the real
//! `criterion` cannot be used. This crate implements the subset of its API
//! that the workspace's benches rely on — `criterion_group!`/
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! `sample_size`, and `Bencher::iter` — and reports simple wall-clock
//! statistics (min / mean over the sampled iterations) to stdout.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_named(name, self.effective_sample_size(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 0,
        }
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        run_named(name, samples, &mut f);
        self
    }

    /// Finishes the group (no-op in this stub).
    pub fn finish(self) {}
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        durations: Vec::new(),
    };
    f(&mut bencher);
    if bencher.durations.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    let min = bencher.durations.iter().min().expect("non-empty");
    let total: Duration = bencher.durations.iter().sum();
    let mean = total / bencher.durations.len() as u32;
    println!(
        "  {name}: min {:?}  mean {:?}  ({} samples)",
        min,
        mean,
        bencher.durations.len()
    );
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // One warm-up plus the default ten samples.
        assert_eq!(runs, 11);
    }

    #[test]
    fn group_sample_size_is_honoured() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counted", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 4);
    }
}
