//! Engine-vs-oracle equivalence: the allocation-lean [`ZoneGraphExplorer`]
//! must agree with the naive [`reachability::reference`] search on verdicts,
//! and every witness either engine produces must replay symbolically on the
//! network it came from.
//!
//! Networks are drawn pseudo-randomly (via the offline proptest stub's
//! deterministic RNG) so every run covers the same 64 structurally diverse
//! cases, plus a grid over the conservative slot-sharing model.

use cps_ta::automaton::{LocationId, SyncAction, TimedAutomatonBuilder};
use cps_ta::guard::ClockConstraint;
use cps_ta::model::{blocking_network, BlockingModelParams};
use cps_ta::network::Network;
use cps_ta::reachability::{self, ReachabilityResult};
use cps_ta::{Dbm, TaError, ZoneGraphExplorer};
use proptest::prelude::*;
use proptest::TestRng;

const BUDGET: usize = 200_000;

/// Builds a random-but-deterministic network from a seed: 1–3 automata with
/// up to 2 clocks and 4 locations each, random guards/resets/invariants and
/// cross-automaton channel synchronization. Constants stay small so the zone
/// graph is tiny and exploration always terminates well within the budget.
fn random_network(seed: u64) -> Network {
    let mut rng = TestRng::new(seed.wrapping_add(1));
    let automata_count = 1 + rng.next_below(3) as usize;
    let mut automata = Vec::new();
    for a in 0..automata_count {
        let mut b = TimedAutomatonBuilder::new(format!("a{a}"));
        let clock_count = rng.next_below(3) as usize; // 0..=2 clocks
        let clocks: Vec<_> = (0..clock_count)
            .map(|c| b.add_clock(format!("x{c}")))
            .collect();
        let location_count = 2 + rng.next_below(3) as usize; // 2..=4
        let mut locations = Vec::new();
        for l in 0..location_count {
            let name = format!("l{l}");
            let kind = rng.next_below(8);
            let id = if l > 0 && kind == 0 {
                b.add_error_location(name)
            } else if l > 0 && kind == 1 {
                b.add_committed_location(name)
            } else {
                b.add_location(name)
            };
            locations.push(id);
        }
        b.set_initial(locations[0]);
        // Invariants: upper bounds only, so they never block a reset edge
        // forever but do bound the zones.
        for &l in &locations {
            if !clocks.is_empty() && rng.next_below(2) == 0 {
                let clock = clocks[rng.next_below(clocks.len() as u64) as usize];
                let c = 1 + rng.next_below(8) as i64;
                b.add_invariant(l, ClockConstraint::le(clock, c)).unwrap();
            }
        }
        let edge_count = 2 + rng.next_below(4) as usize; // 2..=5
        for _ in 0..edge_count {
            let source = locations[rng.next_below(location_count as u64) as usize];
            let target = locations[rng.next_below(location_count as u64) as usize];
            let mut guard = Vec::new();
            for _ in 0..rng.next_below(3) {
                if clocks.is_empty() {
                    break;
                }
                let clock = clocks[rng.next_below(clocks.len() as u64) as usize];
                let c = rng.next_below(9) as i64;
                guard.push(match rng.next_below(4) {
                    0 => ClockConstraint::le(clock, c),
                    1 => ClockConstraint::lt(clock, c + 1),
                    2 => ClockConstraint::ge(clock, c),
                    _ => ClockConstraint::gt(clock, c),
                });
            }
            let resets: Vec<_> = clocks
                .iter()
                .copied()
                .filter(|_| rng.next_below(3) == 0)
                .collect();
            let sync = match rng.next_below(6) {
                0 => Some(SyncAction::Send(rng.next_below(2) as usize)),
                1 => Some(SyncAction::Receive(rng.next_below(2) as usize)),
                _ => None,
            };
            b.add_edge(source, target, guard, resets, sync).unwrap();
        }
        automata.push(b.build().unwrap());
    }
    Network::new(automata).unwrap()
}

/// Applies one transition's zone transformation exactly as the engines do.
fn transition_zone(
    network: &Network,
    zone: &Dbm,
    guards: &[ClockConstraint],
    resets: &[usize],
    target: &[LocationId],
) -> Option<Dbm> {
    let mut zone = zone.clone();
    for g in guards {
        zone.constrain(g);
    }
    if zone.is_empty() {
        return None;
    }
    for &clock in resets {
        zone.reset(clock);
    }
    for c in network.invariants(target) {
        zone.constrain(&c);
    }
    if zone.is_empty() {
        return None;
    }
    if !network.any_committed(target) {
        zone.up();
        for c in network.invariants(target) {
            zone.constrain(&c);
        }
    }
    if zone.is_empty() {
        return None;
    }
    let mut z = zone;
    z.extrapolate(network.max_constant());
    Some(z)
}

/// Symbolically replays a witness: at every step at least one enabled
/// transition must map the current location vector to the next one with a
/// non-empty zone. Returns `false` when the trace is not a run of `network`.
fn witness_replays(network: &Network, witness: &[Vec<LocationId>]) -> bool {
    if witness.is_empty() || witness[0] != network.initial_locations() {
        return false;
    }
    let mut initial = Dbm::zero(network.total_clocks());
    for c in network.invariants(&witness[0]) {
        initial.constrain(&c);
    }
    if !network.any_committed(&witness[0]) {
        initial.up();
        for c in network.invariants(&witness[0]) {
            initial.constrain(&c);
        }
    }
    let mut zones = vec![initial];
    for step in witness.windows(2) {
        let (from, to) = (&step[0], &step[1]);
        let mut next_zones = Vec::new();
        for zone in &zones {
            // Local edges matching the location change.
            for (ai, edge) in network.local_edges(from) {
                let mut expected = from.clone();
                expected[ai] = edge.target();
                if &expected != to {
                    continue;
                }
                let guards = network.global_guard(ai, edge);
                let resets = network.global_resets(ai, edge);
                if let Some(z) = transition_zone(network, zone, &guards, &resets, to) {
                    next_zones.push(z);
                }
            }
            // Synchronizing pairs matching the location change.
            for (si, se, ri, re) in network.sync_pairs(from) {
                let mut expected = from.clone();
                expected[si] = se.target();
                expected[ri] = re.target();
                if &expected != to {
                    continue;
                }
                let mut guards = network.global_guard(si, se);
                guards.extend(network.global_guard(ri, re));
                let mut resets = network.global_resets(si, se);
                resets.extend(network.global_resets(ri, re));
                if let Some(z) = transition_zone(network, zone, &guards, &resets, to) {
                    next_zones.push(z);
                }
            }
        }
        if next_zones.is_empty() {
            return false;
        }
        // Keep the frontier small; inclusion-deduplicate.
        let mut kept: Vec<Dbm> = Vec::new();
        for z in next_zones {
            if !kept.iter().any(|k| z.included_in(k)) {
                kept.push(z);
            }
        }
        zones = kept;
    }
    let last = witness.last().unwrap();
    network.any_error(last)
}

/// Runs both engines and asserts verdict + witness equivalence.
fn assert_equivalent(network: &Network, explorer: &mut ZoneGraphExplorer) {
    let engine = explorer.check(network, BUDGET);
    let oracle = reachability::reference::check_error_reachability(network, BUDGET);
    match (engine, oracle) {
        (Ok(e), Ok(o)) => {
            assert_eq!(
                e.error_reachable(),
                o.error_reachable(),
                "verdict mismatch between engine and reference"
            );
            for (label, result) in [("engine", &e), ("oracle", &o)] {
                if let Some(w) = result.witness() {
                    assert!(
                        witness_replays(network, w),
                        "{label} witness does not replay on the network: {w:?}"
                    );
                }
            }
            assert_eq!(e.witness().is_some(), e.error_reachable());
            assert_eq!(o.witness().is_some(), o.error_reachable());
        }
        (Err(TaError::StateBudgetExhausted { .. }), _)
        | (_, Err(TaError::StateBudgetExhausted { .. })) => {
            panic!("random model unexpectedly exhausted the {BUDGET}-state budget")
        }
        (e, o) => panic!("engine/oracle returned unexpected errors: {e:?} / {o:?}"),
    }
}

proptest! {
    #[test]
    fn engine_matches_reference_on_random_networks(seed in 0u64..1_000_000) {
        let network = random_network(seed);
        let mut explorer = ZoneGraphExplorer::new();
        assert_equivalent(&network, &mut explorer);
    }
}

#[test]
fn engine_matches_reference_on_blocking_model_grid() {
    let mut explorer = ZoneGraphExplorer::new();
    for deadline in 0..6 {
        for blocking in 0..6 {
            let network = blocking_network(BlockingModelParams {
                deadline,
                dwell: 4,
                min_inter_arrival: 25,
                blocking,
            })
            .unwrap();
            assert_equivalent(&network, &mut explorer);
        }
    }
}

#[test]
fn engine_result_shape_matches_public_api() {
    let network = random_network(42);
    let via_api: Result<ReachabilityResult, _> =
        reachability::check_error_reachability(&network, BUDGET);
    let via_engine = ZoneGraphExplorer::new().check(&network, BUDGET);
    assert_eq!(via_api.unwrap(), via_engine.unwrap());
}
