//! A single timed automaton: locations, invariants and edges.

use crate::guard::{ClockConstraint, ClockId};
use crate::TaError;

/// Identifier of a location within one automaton.
pub type LocationId = usize;

/// Identifier of a synchronization channel within a network.
pub type ChannelId = usize;

/// Direction of a channel synchronization on an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncAction {
    /// The edge emits on the channel (`ch!`).
    Send(ChannelId),
    /// The edge receives on the channel (`ch?`).
    Receive(ChannelId),
}

impl SyncAction {
    /// The channel the action uses.
    pub fn channel(&self) -> ChannelId {
        match self {
            SyncAction::Send(c) | SyncAction::Receive(c) => *c,
        }
    }

    /// Returns `true` for the sending half of a synchronization.
    pub fn is_send(&self) -> bool {
        matches!(self, SyncAction::Send(_))
    }
}

/// A location of a timed automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    name: String,
    invariant: Vec<ClockConstraint>,
    committed: bool,
    error: bool,
}

impl Location {
    /// The location's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The conjunction of invariant constraints.
    pub fn invariant(&self) -> &[ClockConstraint] {
        &self.invariant
    }

    /// Committed locations must be left without letting time pass.
    pub fn is_committed(&self) -> bool {
        self.committed
    }

    /// Error locations are the targets of reachability queries.
    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// An edge of a timed automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    source: LocationId,
    target: LocationId,
    guard: Vec<ClockConstraint>,
    resets: Vec<ClockId>,
    sync: Option<SyncAction>,
}

impl Edge {
    /// Source location.
    pub fn source(&self) -> LocationId {
        self.source
    }

    /// Target location.
    pub fn target(&self) -> LocationId {
        self.target
    }

    /// The conjunction of guard constraints.
    pub fn guard(&self) -> &[ClockConstraint] {
        &self.guard
    }

    /// Clocks reset to zero when the edge is taken.
    pub fn resets(&self) -> &[ClockId] {
        &self.resets
    }

    /// The channel synchronization, if any.
    pub fn sync(&self) -> Option<SyncAction> {
        self.sync
    }
}

/// A timed automaton with named clocks and locations.
///
/// Build one with [`TimedAutomatonBuilder`]; see the crate-level example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedAutomaton {
    name: String,
    clock_names: Vec<String>,
    locations: Vec<Location>,
    edges: Vec<Edge>,
    initial: LocationId,
}

impl TimedAutomaton {
    /// The automaton's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of clocks owned by this automaton.
    pub fn clock_count(&self) -> usize {
        self.clock_names.len()
    }

    /// Clock names in id order.
    pub fn clock_names(&self) -> &[String] {
        &self.clock_names
    }

    /// The locations in id order.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// The edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The initial location.
    pub fn initial(&self) -> LocationId {
        self.initial
    }

    /// Edges leaving the given location.
    pub fn edges_from(&self, location: LocationId) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter().filter(move |e| e.source == location)
    }

    /// The largest constant appearing in any guard or invariant (used for
    /// zone extrapolation); zero for an automaton without constraints.
    pub fn max_constant(&self) -> i64 {
        let from_invariants = self
            .locations
            .iter()
            .flat_map(|l| l.invariant.iter())
            .map(|c| c.constant_magnitude());
        let from_guards = self
            .edges
            .iter()
            .flat_map(|e| e.guard.iter())
            .map(|c| c.constant_magnitude());
        from_invariants.chain(from_guards).max().unwrap_or(0)
    }
}

/// Builder for [`TimedAutomaton`].
#[derive(Debug, Clone, Default)]
pub struct TimedAutomatonBuilder {
    name: String,
    clock_names: Vec<String>,
    locations: Vec<Location>,
    edges: Vec<Edge>,
    initial: Option<LocationId>,
}

impl TimedAutomatonBuilder {
    /// Starts building an automaton with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TimedAutomatonBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a clock and returns its id.
    pub fn add_clock(&mut self, name: impl Into<String>) -> ClockId {
        self.clock_names.push(name.into());
        self.clock_names.len() - 1
    }

    /// Adds an ordinary location and returns its id.
    pub fn add_location(&mut self, name: impl Into<String>) -> LocationId {
        self.push_location(name.into(), false, false)
    }

    /// Adds a committed location (time may not pass in it) and returns its id.
    pub fn add_committed_location(&mut self, name: impl Into<String>) -> LocationId {
        self.push_location(name.into(), true, false)
    }

    /// Adds an error location (reachability target) and returns its id.
    pub fn add_error_location(&mut self, name: impl Into<String>) -> LocationId {
        self.push_location(name.into(), false, true)
    }

    fn push_location(&mut self, name: String, committed: bool, error: bool) -> LocationId {
        self.locations.push(Location {
            name,
            invariant: Vec::new(),
            committed,
            error,
        });
        self.locations.len() - 1
    }

    /// Marks which location the automaton starts in.
    pub fn set_initial(&mut self, location: LocationId) {
        self.initial = Some(location);
    }

    /// Adds an invariant constraint to a location.
    ///
    /// # Errors
    ///
    /// Returns [`TaError::UnknownEntity`] when the location or a referenced
    /// clock does not exist.
    pub fn add_invariant(
        &mut self,
        location: LocationId,
        constraint: ClockConstraint,
    ) -> Result<(), TaError> {
        self.check_clock(&constraint)?;
        let loc = self
            .locations
            .get_mut(location)
            .ok_or(TaError::UnknownEntity {
                kind: "location",
                id: location,
            })?;
        loc.invariant.push(constraint);
        Ok(())
    }

    /// Adds an edge.
    ///
    /// # Errors
    ///
    /// Returns [`TaError::UnknownEntity`] when a location, clock in the guard
    /// or reset does not exist.
    pub fn add_edge(
        &mut self,
        source: LocationId,
        target: LocationId,
        guard: Vec<ClockConstraint>,
        resets: Vec<ClockId>,
        sync: Option<SyncAction>,
    ) -> Result<(), TaError> {
        for location in [source, target] {
            if location >= self.locations.len() {
                return Err(TaError::UnknownEntity {
                    kind: "location",
                    id: location,
                });
            }
        }
        for constraint in &guard {
            self.check_clock(constraint)?;
        }
        for &clock in &resets {
            if clock >= self.clock_names.len() {
                return Err(TaError::UnknownEntity {
                    kind: "clock",
                    id: clock,
                });
            }
        }
        self.edges.push(Edge {
            source,
            target,
            guard,
            resets,
            sync,
        });
        Ok(())
    }

    fn check_clock(&self, constraint: &ClockConstraint) -> Result<(), TaError> {
        if let Some(max) = constraint.max_clock() {
            if max >= self.clock_names.len() {
                return Err(TaError::UnknownEntity {
                    kind: "clock",
                    id: max,
                });
            }
        }
        Ok(())
    }

    /// Finalizes the automaton.
    ///
    /// # Errors
    ///
    /// Returns [`TaError::MissingInitialLocation`] when no initial location
    /// was set, and [`TaError::UnknownEntity`] when the automaton has no
    /// locations at all.
    pub fn build(self) -> Result<TimedAutomaton, TaError> {
        if self.locations.is_empty() {
            return Err(TaError::UnknownEntity {
                kind: "location",
                id: 0,
            });
        }
        let initial = self.initial.ok_or(TaError::MissingInitialLocation {
            automaton: self.name.clone(),
        })?;
        Ok(TimedAutomaton {
            name: self.name,
            clock_names: self.clock_names,
            locations: self.locations,
            edges: self.edges,
            initial,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_automaton() -> TimedAutomaton {
        let mut b = TimedAutomatonBuilder::new("simple");
        let x = b.add_clock("x");
        let idle = b.add_location("idle");
        let busy = b.add_location("busy");
        let error = b.add_error_location("error");
        b.set_initial(idle);
        b.add_invariant(busy, ClockConstraint::le(x, 5)).unwrap();
        b.add_edge(idle, busy, vec![], vec![x], None).unwrap();
        b.add_edge(busy, idle, vec![ClockConstraint::ge(x, 2)], vec![], None)
            .unwrap();
        b.add_edge(busy, error, vec![ClockConstraint::ge(x, 10)], vec![], None)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_automaton() {
        let a = simple_automaton();
        assert_eq!(a.name(), "simple");
        assert_eq!(a.clock_count(), 1);
        assert_eq!(a.clock_names(), &["x".to_string()]);
        assert_eq!(a.locations().len(), 3);
        assert_eq!(a.edges().len(), 3);
        assert_eq!(a.initial(), 0);
        assert_eq!(a.edges_from(1).count(), 2);
        assert_eq!(a.max_constant(), 10);
        assert!(a.locations()[2].is_error());
        assert!(!a.locations()[0].is_error());
        assert!(!a.locations()[0].is_committed());
        assert_eq!(a.locations()[1].invariant().len(), 1);
    }

    #[test]
    fn committed_locations_are_flagged() {
        let mut b = TimedAutomatonBuilder::new("c");
        let l = b.add_committed_location("urgent");
        b.set_initial(l);
        let a = b.build().unwrap();
        assert!(a.locations()[0].is_committed());
    }

    #[test]
    fn builder_validates_references() {
        let mut b = TimedAutomatonBuilder::new("v");
        let x = b.add_clock("x");
        let l = b.add_location("l");
        b.set_initial(l);
        assert!(b.add_invariant(7, ClockConstraint::le(x, 1)).is_err());
        assert!(b.add_invariant(l, ClockConstraint::le(9, 1)).is_err());
        assert!(b.add_edge(l, 9, vec![], vec![], None).is_err());
        assert!(b.add_edge(9, l, vec![], vec![], None).is_err());
        assert!(b
            .add_edge(l, l, vec![ClockConstraint::le(4, 1)], vec![], None)
            .is_err());
        assert!(b.add_edge(l, l, vec![], vec![4], None).is_err());
        assert!(b.add_edge(l, l, vec![], vec![x], None).is_ok());
    }

    #[test]
    fn missing_initial_location_is_rejected() {
        let mut b = TimedAutomatonBuilder::new("no-init");
        b.add_location("l");
        assert!(matches!(
            b.build(),
            Err(TaError::MissingInitialLocation { .. })
        ));
        let empty = TimedAutomatonBuilder::new("empty");
        assert!(empty.build().is_err());
    }

    #[test]
    fn sync_action_accessors() {
        let send = SyncAction::Send(3);
        let receive = SyncAction::Receive(3);
        assert_eq!(send.channel(), 3);
        assert_eq!(receive.channel(), 3);
        assert!(send.is_send());
        assert!(!receive.is_send());
    }

    #[test]
    fn edge_accessors() {
        let a = simple_automaton();
        let edge = &a.edges()[1];
        assert_eq!(edge.source(), 1);
        assert_eq!(edge.target(), 0);
        assert_eq!(edge.guard().len(), 1);
        assert!(edge.resets().is_empty());
        assert!(edge.sync().is_none());
    }
}
