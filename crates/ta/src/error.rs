use std::error::Error;
use std::fmt;

/// Errors produced by the timed-automata engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaError {
    /// A clock, location or channel identifier referenced an entity that does
    /// not exist in the automaton or network.
    UnknownEntity {
        /// What kind of entity was referenced (`"clock"`, `"location"`, …).
        kind: &'static str,
        /// The numeric identifier that was out of range.
        id: usize,
    },
    /// The automaton was built without an initial location.
    MissingInitialLocation {
        /// Name of the automaton.
        automaton: String,
    },
    /// A network was created without any automata.
    EmptyNetwork,
    /// The zone-graph exploration exceeded its state budget.
    StateBudgetExhausted {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// A constraint used an inconsistent pair of clocks (e.g. a diagonal
    /// constraint between a clock and itself).
    InvalidConstraint {
        /// Human readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for TaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaError::UnknownEntity { kind, id } => write!(f, "unknown {kind} with id {id}"),
            TaError::MissingInitialLocation { automaton } => {
                write!(f, "automaton `{automaton}` has no initial location")
            }
            TaError::EmptyNetwork => write!(f, "a network needs at least one automaton"),
            TaError::StateBudgetExhausted { budget } => {
                write!(f, "zone-graph exploration exceeded {budget} states")
            }
            TaError::InvalidConstraint { reason } => write!(f, "invalid constraint: {reason}"),
        }
    }
}

impl Error for TaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(TaError::UnknownEntity {
            kind: "clock",
            id: 3
        }
        .to_string()
        .contains("clock"));
        assert!(TaError::MissingInitialLocation {
            automaton: "app".to_string()
        }
        .to_string()
        .contains("app"));
        assert!(TaError::EmptyNetwork.to_string().contains("at least one"));
        assert!(TaError::StateBudgetExhausted { budget: 10 }
            .to_string()
            .contains("10"));
        assert!(TaError::InvalidConstraint {
            reason: "self loop".to_string()
        }
        .to_string()
        .contains("self loop"));
    }

    #[test]
    fn implements_error() {
        fn assert_error<E: Error>() {}
        assert_error::<TaError>();
    }
}
