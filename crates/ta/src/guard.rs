//! Clock constraints (guards and invariants).

use std::fmt;

use crate::dbm::Bound;

/// Identifier of a clock within an automaton or network (0-based).
pub type ClockId = usize;

/// A single atomic clock constraint of the form `x ≺ c`, `x ≻ c` or
/// `x − y ≺ c`, where `≺ ∈ {<, ≤}`.
///
/// Guards and invariants are conjunctions, represented simply as slices of
/// constraints.
///
/// # Example
///
/// ```
/// use cps_ta::guard::ClockConstraint;
///
/// let g = ClockConstraint::le(0, 5);
/// assert_eq!(g.to_string(), "x0 <= 5");
/// let d = ClockConstraint::diff_ge(0, 1, 2);
/// assert_eq!(d.to_string(), "x0 - x1 >= 2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockConstraint {
    /// The clock on the left-hand side, or `None` for the reference clock.
    minuend: Option<ClockId>,
    /// The clock subtracted on the left-hand side, or `None` for the
    /// reference clock.
    subtrahend: Option<ClockId>,
    /// The right-hand-side constant.
    constant: i64,
    /// Whether the comparison is strict (`<`) rather than non-strict (`≤`).
    strict: bool,
}

impl ClockConstraint {
    /// `x ≤ c`.
    pub fn le(clock: ClockId, constant: i64) -> Self {
        ClockConstraint {
            minuend: Some(clock),
            subtrahend: None,
            constant,
            strict: false,
        }
    }

    /// `x < c`.
    pub fn lt(clock: ClockId, constant: i64) -> Self {
        ClockConstraint {
            minuend: Some(clock),
            subtrahend: None,
            constant,
            strict: true,
        }
    }

    /// `x ≥ c` (stored as `0 − x ≤ −c`).
    pub fn ge(clock: ClockId, constant: i64) -> Self {
        ClockConstraint {
            minuend: None,
            subtrahend: Some(clock),
            constant: -constant,
            strict: false,
        }
    }

    /// `x > c` (stored as `0 − x < −c`).
    pub fn gt(clock: ClockId, constant: i64) -> Self {
        ClockConstraint {
            minuend: None,
            subtrahend: Some(clock),
            constant: -constant,
            strict: true,
        }
    }

    /// The pair of constraints expressing `x = c`.
    pub fn eq(clock: ClockId, constant: i64) -> Vec<Self> {
        vec![Self::le(clock, constant), Self::ge(clock, constant)]
    }

    /// Diagonal constraint `x − y ≤ c`.
    pub fn diff_le(x: ClockId, y: ClockId, constant: i64) -> Self {
        ClockConstraint {
            minuend: Some(x),
            subtrahend: Some(y),
            constant,
            strict: false,
        }
    }

    /// Diagonal constraint `x − y ≥ c` (stored as `y − x ≤ −c`).
    pub fn diff_ge(x: ClockId, y: ClockId, constant: i64) -> Self {
        ClockConstraint {
            minuend: Some(y),
            subtrahend: Some(x),
            constant: -constant,
            strict: false,
        }
    }

    /// The largest clock id referenced by the constraint, if any.
    pub fn max_clock(&self) -> Option<ClockId> {
        match (self.minuend, self.subtrahend) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }

    /// The absolute value of the constant (used to pick the extrapolation
    /// bound).
    pub fn constant_magnitude(&self) -> i64 {
        self.constant.abs()
    }

    /// Shifts every referenced clock id by `offset` — used when composing
    /// automata with disjoint clock sets into a network.
    pub fn shift_clocks(&self, offset: usize) -> Self {
        ClockConstraint {
            minuend: self.minuend.map(|c| c + offset),
            subtrahend: self.subtrahend.map(|c| c + offset),
            constant: self.constant,
            strict: self.strict,
        }
    }

    /// The DBM entry `(i, j, bound)` this constraint tightens, where index 0
    /// is the reference clock and real clock `k` maps to index `k + 1`.
    pub fn as_dbm_entry(&self) -> (usize, usize, Bound) {
        let i = self.minuend.map(|c| c + 1).unwrap_or(0);
        let j = self.subtrahend.map(|c| c + 1).unwrap_or(0);
        let bound = if self.strict {
            Bound::Lt(self.constant)
        } else {
            Bound::Le(self.constant)
        };
        (i, j, bound)
    }
}

impl fmt::Display for ClockConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.strict { "<" } else { "<=" };
        match (self.minuend, self.subtrahend) {
            (Some(x), None) => write!(f, "x{x} {op} {}", self.constant),
            (None, Some(y)) => {
                // 0 − y ≺ c  ⇔  y ≻ −c
                let op = if self.strict { ">" } else { ">=" };
                write!(f, "x{y} {op} {}", -self.constant)
            }
            (Some(x), Some(y)) => {
                if self.constant <= 0 && !self.strict {
                    // Prefer the ≥ rendering produced by diff_ge.
                    write!(f, "x{y} - x{x} >= {}", -self.constant)
                } else {
                    write!(f, "x{x} - x{y} {op} {}", self.constant)
                }
            }
            (None, None) => write!(f, "0 {op} {}", self.constant),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_entries_for_upper_and_lower_bounds() {
        let (i, j, b) = ClockConstraint::le(2, 7).as_dbm_entry();
        assert_eq!((i, j), (3, 0));
        assert_eq!(b, Bound::Le(7));
        let (i, j, b) = ClockConstraint::gt(1, 4).as_dbm_entry();
        assert_eq!((i, j), (0, 2));
        assert_eq!(b, Bound::Lt(-4));
    }

    #[test]
    fn equality_expands_to_two_constraints() {
        let both = ClockConstraint::eq(0, 3);
        assert_eq!(both.len(), 2);
        assert_eq!(both[0], ClockConstraint::le(0, 3));
        assert_eq!(both[1], ClockConstraint::ge(0, 3));
    }

    #[test]
    fn diagonal_constraints() {
        let (i, j, b) = ClockConstraint::diff_le(0, 1, 5).as_dbm_entry();
        assert_eq!((i, j), (1, 2));
        assert_eq!(b, Bound::Le(5));
        let (i, j, b) = ClockConstraint::diff_ge(0, 1, 5).as_dbm_entry();
        assert_eq!((i, j), (2, 1));
        assert_eq!(b, Bound::Le(-5));
    }

    #[test]
    fn clock_shifting_for_network_composition() {
        let g = ClockConstraint::diff_le(0, 1, 5).shift_clocks(3);
        assert_eq!(g.max_clock(), Some(4));
        let g = ClockConstraint::ge(2, 1).shift_clocks(2);
        assert_eq!(g.max_clock(), Some(4));
    }

    #[test]
    fn constant_magnitude_for_extrapolation() {
        assert_eq!(ClockConstraint::ge(0, 9).constant_magnitude(), 9);
        assert_eq!(ClockConstraint::le(0, 4).constant_magnitude(), 4);
    }

    #[test]
    fn display_renders_natural_comparisons() {
        assert_eq!(ClockConstraint::le(0, 5).to_string(), "x0 <= 5");
        assert_eq!(ClockConstraint::lt(1, 2).to_string(), "x1 < 2");
        assert_eq!(ClockConstraint::ge(0, 5).to_string(), "x0 >= 5");
        assert_eq!(ClockConstraint::gt(0, 5).to_string(), "x0 > 5");
        assert_eq!(
            ClockConstraint::diff_ge(0, 1, 2).to_string(),
            "x0 - x1 >= 2"
        );
        assert_eq!(
            ClockConstraint::diff_le(0, 1, 2).to_string(),
            "x0 - x1 <= 2"
        );
    }
}
