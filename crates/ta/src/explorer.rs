//! Allocation-lean zone-graph exploration engine.
//!
//! [`ZoneGraphExplorer`] answers the same question as
//! [`crate::reachability::check_error_reachability`] — "is any error location
//! reachable?" — but is built for throughput:
//!
//! * **Location interning with incremental Zobrist hashing** — every
//!   distinct location vector is mapped once to a dense `u32` id through a
//!   [`cps_intern::CachedHashIndex`]. A vector's 64-bit fingerprint is the
//!   XOR of one Zobrist key per `(automaton slot, location)` pair; successors
//!   update the parent's cached fingerprint by XOR-ing out/in only the one
//!   slot a local edge moves (two for a sync pair) instead of re-hashing the
//!   whole vector. The index stores each interned vector's hash next to its
//!   id (and in a reverse table indexed by id), so probes reject collisions
//!   on the cached hash before any slice compare and growth re-buckets
//!   without re-hashing; exact slice equality stays the final test.
//! * **Flat zone arena** — all stored zones live in one `Vec<Bound>`; the
//!   per-location visited list holds indices into it, so the inclusion check
//!   walks contiguous slices instead of chasing per-zone heap allocations.
//! * **Bidirectional subsumption** — a successor included in a stored zone is
//!   dropped (the classic forward check), *and* stored states whose zone is
//!   included in a newly found larger zone are evicted; if they are still
//!   queued they are marked dead and skipped when popped, so the engine never
//!   expands work that a larger zone already covers.
//! * **Scratch-buffer successor generation** — two reusable [`Dbm`] buffers
//!   (`cur`, `succ`) are threaded through the loop; guard, reset, invariant,
//!   delay and extrapolation all run in place via [`Dbm::tighten`] +
//!   one deferred [`Dbm::canonicalize`], so generating a successor performs
//!   zero heap allocations once the buffers are warm.
//!
//! The naive breadth-first search is kept as
//! [`crate::reachability::reference`] and serves as the correctness oracle:
//! `cps-ta`'s tests (and `cps-bench`'s `bench_reach`) assert verdict and
//! witness equivalence between the two on every model they touch.
//!
//! The explorer is reusable: all buffers (arena, queue, interner, scratch
//! zones) survive across [`ZoneGraphExplorer::check`] calls, so verifying a
//! batch of networks amortizes every allocation.

use std::collections::VecDeque;

pub use cps_intern::IndexStats;
use cps_intern::{zobrist_key, CachedHashIndex};

use crate::automaton::{Edge, LocationId};
use crate::dbm::{bounds_included_in, Bound, Dbm};
use crate::network::Network;
use crate::reachability::ReachabilityResult;
use crate::TaError;

const NO_PARENT: u32 = u32::MAX;

/// One stored symbolic state. The location vector lives in the interner and
/// the zone in the arena, so the record itself is four words.
#[derive(Debug, Clone, Copy)]
struct StateRecord {
    /// Interned location-vector id.
    loc: u32,
    /// Zone slot in the arena (slot × zone_len is the slice offset).
    zone: u32,
    /// Index of the parent state, or [`NO_PARENT`].
    parent: u32,
    /// Cleared when a later, larger zone at the same location subsumed this
    /// state while it was still queued.
    alive: bool,
}

/// Reusable allocation-lean zone-graph reachability engine.
///
/// # Example
///
/// ```
/// use cps_ta::{automaton::TimedAutomatonBuilder, guard::ClockConstraint, network::Network};
/// use cps_ta::explorer::ZoneGraphExplorer;
///
/// # fn main() -> Result<(), cps_ta::TaError> {
/// let mut b = TimedAutomatonBuilder::new("demo");
/// let x = b.add_clock("x");
/// let start = b.add_location("start");
/// let error = b.add_error_location("error");
/// b.set_initial(start);
/// b.add_invariant(start, ClockConstraint::le(x, 5))?;
/// b.add_edge(start, error, vec![ClockConstraint::ge(x, 10)], vec![], None)?;
/// let network = Network::new(vec![b.build()?])?;
///
/// let mut explorer = ZoneGraphExplorer::new();
/// let result = explorer.check(&network, 10_000)?;
/// assert!(!result.error_reachable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ZoneGraphExplorer {
    /// Interner: location-vector fingerprint → dense id, with each entry's
    /// hash cached next to its id. Only genuinely new vectors allocate.
    loc_index: CachedHashIndex,
    /// Reverse interner, indexed by location id.
    loc_vecs: Vec<Box<[LocationId]>>,
    /// Each interned vector's Zobrist fingerprint, indexed by location id —
    /// the parent hash every incremental successor update starts from.
    loc_hashes: Vec<u64>,
    /// Per location id: indices of states whose zone is stored (the visited
    /// list the inclusion check walks).
    loc_zones: Vec<Vec<u32>>,
    /// All stored zones, back to back; zone slot `s` occupies
    /// `arena[s * zone_len .. (s + 1) * zone_len]`.
    arena: Vec<Bound>,
    states: Vec<StateRecord>,
    queue: VecDeque<u32>,
    /// Scratch: zone of the state currently being expanded.
    cur: Dbm,
    /// Scratch: successor zone under construction.
    succ: Dbm,
    cur_locs: Vec<LocationId>,
    succ_locs: Vec<LocationId>,
    sync_buf_capacity: usize,
    /// Per-slot XOR updates performed by the incremental location hashing,
    /// cumulative across runs.
    loc_hash_updates: usize,
}

impl ZoneGraphExplorer {
    /// Creates an engine with empty buffers.
    pub fn new() -> Self {
        ZoneGraphExplorer::default()
    }

    /// Checks whether any error location of the network is reachable.
    ///
    /// Semantics (verdict, witness shape, budget accounting) match
    /// [`crate::reachability::reference::check_error_reachability`]:
    /// `state_budget` bounds the number of symbolic states *popped and
    /// expanded*, and exceeding it is an error rather than a verdict.
    ///
    /// # Errors
    ///
    /// Returns [`TaError::StateBudgetExhausted`] when the exploration pops
    /// more than `state_budget` states.
    pub fn check(
        &mut self,
        network: &Network,
        state_budget: usize,
    ) -> Result<ReachabilityResult, TaError> {
        self.reset();
        let clocks = network.total_clocks();
        let dim = clocks + 1;
        let zone_len = dim * dim;
        let max_constant = network.max_constant();

        let ZoneGraphExplorer {
            loc_index,
            loc_vecs,
            loc_zones,
            loc_hashes,
            arena,
            states,
            queue,
            cur,
            succ,
            cur_locs,
            succ_locs,
            sync_buf_capacity,
            loc_hash_updates,
        } = self;

        // Reusable buffer of enabled sync pairs (references into `network`).
        let mut sync_pairs: Vec<(usize, &Edge, usize, &Edge)> =
            Vec::with_capacity(*sync_buf_capacity);

        // Initial state: all clocks zero, invariants applied, delay allowed.
        let initial_locations = network.initial_locations();
        *succ = Dbm::zero(clocks);
        apply_invariants_and_delay(network, &initial_locations, succ);
        // The one from-scratch location hash of the whole run; every other
        // fingerprint is an incremental XOR update of a cached parent hash.
        let initial_hash = loc_fingerprint(&initial_locations);
        *loc_hash_updates += initial_locations.len();
        let initial_loc = intern(
            loc_index,
            loc_vecs,
            loc_zones,
            loc_hashes,
            &initial_locations,
            initial_hash,
        );
        push_state(
            arena,
            states,
            queue,
            &mut loc_zones[initial_loc as usize],
            initial_loc,
            NO_PARENT,
            succ.as_bounds(),
        );

        let mut explored = 0usize;
        while let Some(index) = queue.pop_front() {
            let record = states[index as usize];
            if !record.alive {
                continue;
            }
            explored += 1;
            if explored > state_budget {
                *sync_buf_capacity = sync_pairs.capacity();
                return Err(TaError::StateBudgetExhausted {
                    budget: state_budget,
                });
            }

            cur_locs.clear();
            cur_locs.extend_from_slice(&loc_vecs[record.loc as usize]);
            let cur_hash = loc_hashes[record.loc as usize];
            cur.copy_from_bounds(clocks, zone_slice(arena, record.zone, zone_len));

            if network.any_error(cur_locs) {
                *sync_buf_capacity = sync_pairs.capacity();
                return Ok(ReachabilityResult::new(
                    true,
                    explored,
                    Some(reconstruct_trace(states, loc_vecs, index)),
                ));
            }

            // Non-synchronizing edges.
            for (automaton_index, edge) in network.local_edges(cur_locs) {
                succ.copy_from(cur);
                let mut changed = false;
                for constraint in network.guard_iter(automaton_index, edge) {
                    changed |= succ.tighten(&constraint);
                }
                if changed {
                    succ.canonicalize();
                }
                if succ.is_empty() {
                    continue;
                }
                for clock in network.resets_iter(automaton_index, edge) {
                    succ.reset(clock);
                }
                succ_locs.clear();
                succ_locs.extend_from_slice(cur_locs);
                succ_locs[automaton_index] = edge.target();
                apply_invariants_and_delay(network, succ_locs, succ);
                if succ.is_empty() {
                    continue;
                }
                succ.extrapolate(max_constant);
                // A local edge moves exactly one automaton: XOR out/in that
                // one slot (a self-loop cancels to the parent's hash).
                let succ_hash = cur_hash
                    ^ zobrist_key(automaton_index, cur_locs[automaton_index] as u32)
                    ^ zobrist_key(automaton_index, edge.target() as u32);
                *loc_hash_updates += 1;
                debug_assert_eq!(succ_hash, loc_fingerprint(succ_locs));
                insert_successor(
                    loc_index, loc_vecs, loc_zones, loc_hashes, arena, states, queue, succ_locs,
                    succ_hash, succ, index, zone_len,
                );
            }

            // Synchronizing edge pairs.
            network.sync_pairs_into(cur_locs, &mut sync_pairs);
            for &(send_index, send_edge, recv_index, recv_edge) in &sync_pairs {
                succ.copy_from(cur);
                let mut changed = false;
                for constraint in network.guard_iter(send_index, send_edge) {
                    changed |= succ.tighten(&constraint);
                }
                for constraint in network.guard_iter(recv_index, recv_edge) {
                    changed |= succ.tighten(&constraint);
                }
                if changed {
                    succ.canonicalize();
                }
                if succ.is_empty() {
                    continue;
                }
                for clock in network.resets_iter(send_index, send_edge) {
                    succ.reset(clock);
                }
                for clock in network.resets_iter(recv_index, recv_edge) {
                    succ.reset(clock);
                }
                succ_locs.clear();
                succ_locs.extend_from_slice(cur_locs);
                succ_locs[send_index] = send_edge.target();
                succ_locs[recv_index] = recv_edge.target();
                apply_invariants_and_delay(network, succ_locs, succ);
                if succ.is_empty() {
                    continue;
                }
                succ.extrapolate(max_constant);
                // A sync pair moves the sender and the receiver: two slots.
                let succ_hash = cur_hash
                    ^ zobrist_key(send_index, cur_locs[send_index] as u32)
                    ^ zobrist_key(send_index, send_edge.target() as u32)
                    ^ zobrist_key(recv_index, cur_locs[recv_index] as u32)
                    ^ zobrist_key(recv_index, recv_edge.target() as u32);
                *loc_hash_updates += 2;
                debug_assert_eq!(succ_hash, loc_fingerprint(succ_locs));
                insert_successor(
                    loc_index, loc_vecs, loc_zones, loc_hashes, arena, states, queue, succ_locs,
                    succ_hash, succ, index, zone_len,
                );
            }
        }

        *sync_buf_capacity = sync_pairs.capacity();
        Ok(ReachabilityResult::new(false, explored, None))
    }

    /// Clears all per-run state but keeps every buffer's capacity (and the
    /// cumulative work counters).
    fn reset(&mut self) {
        self.loc_index.reset();
        self.loc_vecs.clear();
        self.loc_hashes.clear();
        self.loc_zones.clear();
        self.arena.clear();
        self.states.clear();
        self.queue.clear();
        self.cur_locs.clear();
        self.succ_locs.clear();
    }

    /// Cumulative probe/hit/rehash counters of the location interner over the
    /// explorer's lifetime (benches snapshot this and report deltas via
    /// [`IndexStats::since`]).
    pub fn intern_stats(&self) -> &IndexStats {
        self.loc_index.stats()
    }

    /// Per-slot XOR updates performed by the incremental location hashing,
    /// cumulative — compare against `intern_stats().probes × slots` to see
    /// the work a full re-hash per successor would have done.
    pub fn loc_hash_updates(&self) -> usize {
        self.loc_hash_updates
    }
}

/// From-scratch fingerprint of a location vector: the XOR of one Zobrist key
/// per `(automaton slot, location)` pair. Computed once per run for the
/// initial vector; every successor updates incrementally (and
/// `debug_assert`s agreement with this).
fn loc_fingerprint(locations: &[LocationId]) -> u64 {
    locations
        .iter()
        .enumerate()
        .fold(0, |fp, (slot, &loc)| fp ^ zobrist_key(slot, loc as u32))
}

fn zone_slice(arena: &[Bound], slot: u32, zone_len: usize) -> &[Bound] {
    let start = slot as usize * zone_len;
    &arena[start..start + zone_len]
}

/// Interns `locations` under its Zobrist fingerprint `hash`. The cached-hash
/// index rejects almost every collision before the slice compare; exact
/// slice equality remains the final test, so a fingerprint collision costs a
/// compare, never a merged location.
fn intern(
    loc_index: &mut CachedHashIndex,
    loc_vecs: &mut Vec<Box<[LocationId]>>,
    loc_zones: &mut Vec<Vec<u32>>,
    loc_hashes: &mut Vec<u64>,
    locations: &[LocationId],
    hash: u64,
) -> u32 {
    let new_id = loc_vecs.len() as u32;
    match loc_index.intern(hash, |id| &*loc_vecs[id as usize] == locations, new_id) {
        Some(existing) => existing,
        None => {
            loc_vecs.push(locations.into());
            loc_zones.push(Vec::new());
            loc_hashes.push(hash);
            new_id
        }
    }
}

/// Stores a zone + state record unconditionally (used for the initial state).
fn push_state(
    arena: &mut Vec<Bound>,
    states: &mut Vec<StateRecord>,
    queue: &mut VecDeque<u32>,
    zone_list: &mut Vec<u32>,
    loc: u32,
    parent: u32,
    bounds: &[Bound],
) {
    let slot = (arena.len() / bounds.len().max(1)) as u32;
    arena.extend_from_slice(bounds);
    let index = states.len() as u32;
    states.push(StateRecord {
        loc,
        zone: slot,
        parent,
        alive: true,
    });
    zone_list.push(index);
    queue.push_back(index);
}

/// Inclusion-checked insertion with bidirectional subsumption.
#[allow(clippy::too_many_arguments)]
fn insert_successor(
    loc_index: &mut CachedHashIndex,
    loc_vecs: &mut Vec<Box<[LocationId]>>,
    loc_zones: &mut Vec<Vec<u32>>,
    loc_hashes: &mut Vec<u64>,
    arena: &mut Vec<Bound>,
    states: &mut Vec<StateRecord>,
    queue: &mut VecDeque<u32>,
    locations: &[LocationId],
    hash: u64,
    zone: &Dbm,
    parent: u32,
    zone_len: usize,
) {
    let loc = intern(loc_index, loc_vecs, loc_zones, loc_hashes, locations, hash);
    let list = &mut loc_zones[loc as usize];
    let new_bounds = zone.as_bounds();

    // Forward subsumption: drop the successor when a stored zone covers it.
    if list.iter().any(|&s| {
        bounds_included_in(
            new_bounds,
            zone_slice(arena, states[s as usize].zone, zone_len),
        )
    }) {
        return;
    }

    // Backward subsumption: evict stored zones the new one covers; states
    // still queued are marked dead and skipped on pop.
    list.retain(|&s| {
        let covered = bounds_included_in(
            zone_slice(arena, states[s as usize].zone, zone_len),
            new_bounds,
        );
        if covered {
            states[s as usize].alive = false;
        }
        !covered
    });

    let slot = (arena.len() / zone_len) as u32;
    arena.extend_from_slice(new_bounds);
    let index = states.len() as u32;
    states.push(StateRecord {
        loc,
        zone: slot,
        parent,
        alive: true,
    });
    list.push(index);
    queue.push_back(index);
}

/// Conjoins the invariants of the location vector and, unless a committed
/// location forbids it, lets time pass (bounded again by the invariants).
/// Batched: one canonicalization per tightening round instead of one per
/// constraint.
fn apply_invariants_and_delay(network: &Network, locations: &[LocationId], zone: &mut Dbm) {
    let mut changed = false;
    for constraint in network.invariants_iter(locations) {
        changed |= zone.tighten(&constraint);
    }
    if changed {
        zone.canonicalize();
    }
    if zone.is_empty() {
        return;
    }
    if !network.any_committed(locations) {
        zone.up();
        let mut changed = false;
        for constraint in network.invariants_iter(locations) {
            changed |= zone.tighten(&constraint);
        }
        if changed {
            zone.canonicalize();
        }
    }
}

fn reconstruct_trace(
    states: &[StateRecord],
    loc_vecs: &[Box<[LocationId]>],
    index: u32,
) -> Vec<Vec<LocationId>> {
    let mut trace = Vec::new();
    let mut cursor = index;
    loop {
        trace.push(loc_vecs[states[cursor as usize].loc as usize].to_vec());
        let parent = states[cursor as usize].parent;
        if parent == NO_PARENT {
            break;
        }
        cursor = parent;
    }
    trace.reverse();
    trace
}
