//! Difference-bound matrices (DBMs) — the canonical zone representation for
//! timed automata.
//!
//! A DBM over clocks `x₁ … xₙ` (plus the implicit reference clock `x₀ = 0`)
//! stores, for every ordered pair `(i, j)`, an upper bound on `xᵢ − xⱼ`.
//! All standard zone operations are provided: delay (`up`), clock reset,
//! conjunction with a constraint, canonicalization, emptiness, inclusion and
//! `k`-extrapolation (which guarantees a finite zone graph).

use std::fmt;

use crate::guard::ClockConstraint;

/// An upper bound on a clock difference: either unbounded (`∞`) or
/// `≤ value` / `< value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// No constraint (`< ∞`).
    Unbounded,
    /// `xᵢ − xⱼ ≤ value`.
    Le(i64),
    /// `xᵢ − xⱼ < value`.
    Lt(i64),
}

impl Bound {
    /// The additive identity `≤ 0`.
    pub const ZERO: Bound = Bound::Le(0);

    fn key(&self) -> (i64, i64) {
        // Encode strictness so that `< c` sorts just below `≤ c`.
        match self {
            Bound::Unbounded => (i64::MAX, 1),
            Bound::Le(v) => (*v, 1),
            Bound::Lt(v) => (*v, 0),
        }
    }

    /// Returns `true` when `self` is at most as permissive as `other`.
    pub fn tighter_or_equal(&self, other: &Bound) -> bool {
        self.key() <= other.key()
    }

    /// The tighter (smaller) of two bounds.
    pub fn min(self, other: Bound) -> Bound {
        if self.tighter_or_equal(&other) {
            self
        } else {
            other
        }
    }

    /// Bound addition (used by the shortest-path closure).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => Bound::Unbounded,
            (Bound::Le(a), Bound::Le(b)) => Bound::Le(a + b),
            (Bound::Le(a), Bound::Lt(b))
            | (Bound::Lt(a), Bound::Le(b))
            | (Bound::Lt(a), Bound::Lt(b)) => Bound::Lt(a + b),
        }
    }

    /// The bound's numeric value, or `None` when unbounded.
    pub fn value(&self) -> Option<i64> {
        match self {
            Bound::Unbounded => None,
            Bound::Le(v) | Bound::Lt(v) => Some(*v),
        }
    }

    /// Whether the bound is strict (`<` rather than `≤`).
    pub fn is_strict(&self) -> bool {
        matches!(self, Bound::Lt(_))
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Unbounded => write!(f, "<inf"),
            Bound::Le(v) => write!(f, "<={v}"),
            Bound::Lt(v) => write!(f, "<{v}"),
        }
    }
}

/// A difference-bound matrix over `clocks` real-valued clocks.
///
/// # Example
///
/// ```
/// use cps_ta::dbm::Dbm;
/// use cps_ta::guard::ClockConstraint;
///
/// let mut zone = Dbm::zero(1);
/// zone.up();                                        // let time pass
/// zone.constrain(&ClockConstraint::le(0, 5));       // x ≤ 5
/// assert!(!zone.is_empty());
/// zone.constrain(&ClockConstraint::ge(0, 6));       // x ≥ 6 → contradiction
/// assert!(zone.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dbm {
    clocks: usize,
    /// Row-major `(clocks + 1)²` matrix; entry `(i, j)` bounds `xᵢ − xⱼ`.
    bounds: Vec<Bound>,
}

impl Default for Dbm {
    /// The zero-clock zone — a placeholder for scratch buffers that are
    /// always overwritten via [`Dbm::copy_from`] before use.
    fn default() -> Self {
        Dbm::zero(0)
    }
}

impl Dbm {
    /// The zone in which every clock equals zero.
    pub fn zero(clocks: usize) -> Self {
        let dim = clocks + 1;
        Dbm {
            clocks,
            bounds: vec![Bound::ZERO; dim * dim],
        }
    }

    /// The unconstrained zone (all non-negative clock valuations).
    pub fn universe(clocks: usize) -> Self {
        let dim = clocks + 1;
        let mut bounds = vec![Bound::Unbounded; dim * dim];
        for i in 0..dim {
            bounds[i * dim + i] = Bound::ZERO;
            // x₀ − xᵢ ≤ 0 keeps clocks non-negative.
            bounds[i] = Bound::ZERO;
        }
        Dbm { clocks, bounds }
    }

    /// Number of real clocks (excluding the reference clock).
    pub fn clocks(&self) -> usize {
        self.clocks
    }

    fn dim(&self) -> usize {
        self.clocks + 1
    }

    /// The bound on `xᵢ − xⱼ` (indices include the reference clock 0).
    pub fn bound(&self, i: usize, j: usize) -> Bound {
        self.bounds[i * self.dim() + j]
    }

    /// The raw row-major bound matrix, `(clocks + 1)²` entries.
    ///
    /// Used by the zone-graph explorer to store zones in a flat arena; two
    /// canonical zones over the same clocks are included in one another
    /// exactly when [`bounds_included_in`] holds entry-wise on these slices.
    pub fn as_bounds(&self) -> &[Bound] {
        &self.bounds
    }

    /// Overwrites this zone with `other` without reallocating when the
    /// dimensions already match.
    pub fn copy_from(&mut self, other: &Dbm) {
        self.clocks = other.clocks;
        self.bounds.clear();
        self.bounds.extend_from_slice(&other.bounds);
    }

    /// Overwrites this zone with a raw bound matrix previously obtained from
    /// [`Dbm::as_bounds`] of a zone over `clocks` clocks.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not a `(clocks + 1)²` matrix.
    pub fn copy_from_bounds(&mut self, clocks: usize, bounds: &[Bound]) {
        let dim = clocks + 1;
        assert_eq!(bounds.len(), dim * dim, "bound matrix has the wrong size");
        self.clocks = clocks;
        self.bounds.clear();
        self.bounds.extend_from_slice(bounds);
    }

    fn set_bound(&mut self, i: usize, j: usize, bound: Bound) {
        let dim = self.dim();
        self.bounds[i * dim + j] = bound;
    }

    /// Returns `true` when the zone contains no clock valuation.
    pub fn is_empty(&self) -> bool {
        // After canonicalization a negative cycle shows up on the diagonal.
        (0..self.dim()).any(|i| self.bound(i, i).tighter_or_equal(&Bound::Lt(0)))
    }

    /// Shortest-path closure (Floyd–Warshall); brings the DBM to canonical
    /// form so that emptiness, inclusion and hashing are well defined.
    pub fn canonicalize(&mut self) {
        let dim = self.dim();
        for k in 0..dim {
            for i in 0..dim {
                for j in 0..dim {
                    let through_k = self.bound(i, k).add(self.bound(k, j));
                    if through_k.tighter_or_equal(&self.bound(i, j))
                        && through_k != self.bound(i, j)
                    {
                        self.set_bound(i, j, through_k);
                    }
                }
            }
        }
    }

    /// Delay operation (`up`): lets an arbitrary amount of time pass.
    pub fn up(&mut self) {
        for i in 1..self.dim() {
            self.set_bound(i, 0, Bound::Unbounded);
        }
    }

    /// Resets the clock with the given 0-based id (the same ids used by
    /// [`ClockConstraint`]) to zero.
    ///
    /// # Panics
    ///
    /// Panics if the clock id is out of range.
    pub fn reset(&mut self, clock: usize) {
        assert!(clock < self.clocks, "clock index {clock} out of range");
        let row = clock + 1;
        for j in 0..self.dim() {
            let via_zero = self.bound(0, j);
            self.set_bound(row, j, via_zero);
            let to_zero = self.bound(j, 0);
            self.set_bound(j, row, to_zero);
        }
        self.set_bound(row, row, Bound::ZERO);
    }

    /// Conjoins the zone with a single clock constraint and re-canonicalizes.
    pub fn constrain(&mut self, constraint: &ClockConstraint) {
        if self.tighten(constraint) {
            self.canonicalize();
        }
    }

    /// Tightens the DBM entry of a single constraint **without**
    /// re-canonicalizing; returns `true` when the entry actually changed.
    ///
    /// Conjoining a whole guard is `tighten` per constraint followed by one
    /// [`Dbm::canonicalize`] — the shortest-path closure of the intersection
    /// is the same whether the closure runs after each tightening or once at
    /// the end, so this saves `O(n³)` work per extra constraint. The hot
    /// exploration loop in [`crate::explorer`] relies on it.
    pub fn tighten(&mut self, constraint: &ClockConstraint) -> bool {
        let (i, j, bound) = constraint.as_dbm_entry();
        let tightened = bound.min(self.bound(i, j));
        if tightened != self.bound(i, j) {
            self.set_bound(i, j, tightened);
            true
        } else {
            false
        }
    }

    /// Returns `true` when conjoining the constraint would leave the zone
    /// non-empty (i.e. the constraint is satisfiable within the zone).
    pub fn satisfies(&self, constraint: &ClockConstraint) -> bool {
        let mut copy = self.clone();
        copy.constrain(constraint);
        !copy.is_empty()
    }

    /// Zone inclusion: `true` when every valuation of `self` is contained in
    /// `other`. Both zones must be canonical.
    pub fn included_in(&self, other: &Dbm) -> bool {
        debug_assert_eq!(self.clocks, other.clocks);
        bounds_included_in(&self.bounds, &other.bounds)
    }

    /// Classic `k`-extrapolation: bounds larger than `k` become unbounded and
    /// lower bounds smaller than `−k` are relaxed to `< −k`. Guarantees a
    /// finite zone graph when `k` is at least the largest constant in the
    /// model. Re-canonicalizes afterwards.
    pub fn extrapolate(&mut self, k: i64) {
        let dim = self.dim();
        for i in 0..dim {
            for j in 0..dim {
                if i == j {
                    continue;
                }
                match self.bound(i, j).value() {
                    Some(v) if v > k => self.set_bound(i, j, Bound::Unbounded),
                    Some(v) if v < -k => self.set_bound(i, j, Bound::Lt(-k)),
                    _ => {}
                }
            }
        }
        self.canonicalize();
    }
}

/// Entry-wise zone inclusion on raw bound matrices (see [`Dbm::as_bounds`]):
/// `true` when the canonical zone stored in `a` is contained in the one
/// stored in `b`. Both slices must come from canonical zones over the same
/// clock set.
pub fn bounds_included_in(a: &[Bound], b: &[Bound]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).all(|(x, y)| x.tighter_or_equal(y))
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                write!(f, "{:>8} ", self.bound(i, j).to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_ordering_and_arithmetic() {
        assert!(Bound::Lt(5).tighter_or_equal(&Bound::Le(5)));
        assert!(!Bound::Le(5).tighter_or_equal(&Bound::Lt(5)));
        assert!(Bound::Le(3).tighter_or_equal(&Bound::Unbounded));
        assert_eq!(Bound::Le(2).add(Bound::Lt(3)), Bound::Lt(5));
        assert_eq!(Bound::Le(2).add(Bound::Le(3)), Bound::Le(5));
        assert_eq!(Bound::Unbounded.add(Bound::Le(1)), Bound::Unbounded);
        assert_eq!(Bound::Le(2).min(Bound::Lt(2)), Bound::Lt(2));
        assert_eq!(Bound::Le(7).value(), Some(7));
        assert_eq!(Bound::Unbounded.value(), None);
        assert!(Bound::Lt(1).is_strict());
        assert!(!Bound::Le(1).is_strict());
        assert_eq!(Bound::Lt(3).to_string(), "<3");
        assert_eq!(Bound::Unbounded.to_string(), "<inf");
    }

    #[test]
    fn zero_zone_is_the_origin() {
        let zone = Dbm::zero(2);
        assert!(!zone.is_empty());
        // x ≤ 0 and x ≥ 0 hold at the origin.
        assert!(zone.satisfies(&ClockConstraint::le(0, 0)));
        assert!(!zone.satisfies(&ClockConstraint::ge(0, 1)));
        assert_eq!(zone.clocks(), 2);
    }

    #[test]
    fn universe_contains_everything_nonnegative() {
        let zone = Dbm::universe(1);
        assert!(!zone.is_empty());
        assert!(zone.satisfies(&ClockConstraint::ge(0, 1000)));
        assert!(zone.satisfies(&ClockConstraint::le(0, 0)));
    }

    #[test]
    fn delay_then_constrain() {
        let mut zone = Dbm::zero(1);
        zone.up();
        // After delay x can be anything ≥ 0.
        assert!(zone.satisfies(&ClockConstraint::ge(0, 7)));
        zone.constrain(&ClockConstraint::le(0, 5));
        assert!(!zone.satisfies(&ClockConstraint::ge(0, 6)));
        assert!(zone.satisfies(&ClockConstraint::ge(0, 5)));
    }

    #[test]
    fn contradictory_constraints_empty_the_zone() {
        let mut zone = Dbm::zero(1);
        zone.up();
        zone.constrain(&ClockConstraint::le(0, 5));
        zone.constrain(&ClockConstraint::ge(0, 6));
        assert!(zone.is_empty());
    }

    #[test]
    fn reset_pins_a_clock_without_touching_others() {
        let mut zone = Dbm::zero(2);
        zone.up();
        zone.constrain(&ClockConstraint::ge(0, 3));
        zone.constrain(&ClockConstraint::le(0, 3));
        // Both clocks advanced together and sit at exactly 3; reset clock 0.
        zone.reset(0);
        assert!(zone.satisfies(&ClockConstraint::le(0, 0)));
        // The other clock still sits at 3.
        assert!(zone.satisfies(&ClockConstraint::ge(1, 3)));
        assert!(!zone.satisfies(&ClockConstraint::ge(1, 4)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resetting_an_unknown_clock_panics() {
        let mut zone = Dbm::zero(1);
        zone.reset(1);
    }

    #[test]
    fn diagonal_constraints_relate_two_clocks() {
        let mut zone = Dbm::zero(2);
        zone.up();
        zone.reset(1);
        zone.up();
        // Now x1 ≥ x2; the difference x1 − x2 can be arbitrary ≥ 0.
        assert!(zone.satisfies(&ClockConstraint::diff_ge(0, 1, 4)));
        zone.constrain(&ClockConstraint::diff_le(0, 1, 2));
        assert!(!zone.satisfies(&ClockConstraint::diff_ge(0, 1, 3)));
    }

    #[test]
    fn inclusion_is_reflexive_and_detects_subsets() {
        let mut small = Dbm::zero(1);
        small.up();
        small.constrain(&ClockConstraint::le(0, 3));
        let mut large = Dbm::zero(1);
        large.up();
        large.constrain(&ClockConstraint::le(0, 10));
        assert!(small.included_in(&small));
        assert!(small.included_in(&large));
        assert!(!large.included_in(&small));
    }

    #[test]
    fn extrapolation_forgets_large_constants() {
        let mut zone = Dbm::zero(1);
        zone.up();
        zone.constrain(&ClockConstraint::ge(0, 1000));
        zone.extrapolate(10);
        // The lower bound 1000 exceeds k = 10, so the zone relaxes to x > 10.
        assert!(zone.satisfies(&ClockConstraint::le(0, 500)));
        assert!(!zone.satisfies(&ClockConstraint::le(0, 5)));
    }

    #[test]
    fn tighten_defers_canonicalization() {
        let mut batched = Dbm::zero(2);
        batched.up();
        let mut sequential = batched.clone();
        let guard = [
            ClockConstraint::ge(0, 2),
            ClockConstraint::le(0, 9),
            ClockConstraint::diff_le(1, 0, 3),
        ];
        for c in &guard {
            sequential.constrain(c);
            batched.tighten(c);
        }
        batched.canonicalize();
        // One closure at the end reaches the same canonical form as a
        // closure after every constraint.
        assert_eq!(batched, sequential);
        // Re-tightening with an already-implied constraint reports no change.
        assert!(!batched.tighten(&ClockConstraint::le(0, 9)));
    }

    #[test]
    fn copy_from_and_raw_bounds_round_trip() {
        let mut source = Dbm::zero(2);
        source.up();
        source.constrain(&ClockConstraint::le(0, 4));
        let mut target = Dbm::zero(2);
        target.copy_from(&source);
        assert_eq!(target, source);
        let mut reloaded = Dbm::universe(2);
        reloaded.copy_from_bounds(source.clocks(), source.as_bounds());
        assert_eq!(reloaded, source);
        assert!(bounds_included_in(source.as_bounds(), target.as_bounds()));
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn loading_mismatched_bounds_panics() {
        let source = Dbm::zero(1);
        let mut target = Dbm::zero(2);
        target.copy_from_bounds(2, source.as_bounds());
    }

    #[test]
    fn display_renders_a_square_matrix() {
        let zone = Dbm::zero(1);
        let text = zone.to_string();
        assert_eq!(text.lines().count(), 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn up_never_empties_a_nonempty_zone(upper in 0i64..50) {
                let mut zone = Dbm::zero(1);
                zone.up();
                zone.constrain(&ClockConstraint::le(0, upper));
                prop_assert!(!zone.is_empty());
                zone.up();
                prop_assert!(!zone.is_empty());
                // After up the upper bound is gone.
                prop_assert!(zone.satisfies(&ClockConstraint::ge(0, upper + 1)));
            }

            #[test]
            fn reset_makes_clock_zero(bound in 1i64..50) {
                let mut zone = Dbm::zero(2);
                zone.up();
                zone.constrain(&ClockConstraint::le(0, bound));
                zone.reset(0);
                prop_assert!(zone.satisfies(&ClockConstraint::le(0, 0)));
                prop_assert!(!zone.satisfies(&ClockConstraint::ge(0, 1)));
            }

            #[test]
            fn canonicalize_is_idempotent(lo in 0i64..20, hi in 0i64..20, d in -10i64..10) {
                let mut zone = Dbm::zero(2);
                zone.up();
                zone.tighten(&ClockConstraint::ge(0, lo));
                zone.tighten(&ClockConstraint::le(0, hi));
                zone.tighten(&ClockConstraint::diff_le(0, 1, d));
                zone.canonicalize();
                if zone.is_empty() {
                    // A negative cycle has no well-defined closure; the only
                    // stable property is that the zone stays empty.
                    zone.canonicalize();
                    prop_assert!(zone.is_empty());
                } else {
                    let once = zone.clone();
                    zone.canonicalize();
                    prop_assert_eq!(once, zone);
                }
            }

            #[test]
            fn inclusion_is_reflexive_and_transitive(hi in 1i64..30, cut_a in 0i64..30, cut_b in 0i64..30) {
                // Three canonical zones nested by construction: every
                // `constrain` only removes valuations.
                let mut outer = Dbm::zero(2);
                outer.up();
                outer.constrain(&ClockConstraint::le(0, hi));
                let mut middle = outer.clone();
                middle.constrain(&ClockConstraint::le(0, cut_a));
                let mut inner = middle.clone();
                inner.constrain(&ClockConstraint::le(1, cut_b));
                for zone in [&outer, &middle, &inner] {
                    prop_assert!(zone.included_in(zone));
                }
                prop_assert!(inner.included_in(&middle));
                prop_assert!(middle.included_in(&outer));
                prop_assert!(inner.included_in(&outer));
            }

            #[test]
            fn up_then_extrapolate_preserves_emptiness(lo in 0i64..40, hi in 0i64..40, k in 1i64..20) {
                // `lo > hi` produces an empty zone; both operations must keep
                // empty zones empty and non-empty zones non-empty.
                let mut zone = Dbm::zero(1);
                zone.up();
                zone.constrain(&ClockConstraint::ge(0, lo));
                zone.constrain(&ClockConstraint::le(0, hi));
                let was_empty = zone.is_empty();
                prop_assert_eq!(was_empty, lo > hi);
                zone.up();
                zone.extrapolate(k);
                prop_assert_eq!(zone.is_empty(), was_empty);
            }

            #[test]
            fn canonical_zones_are_inclusion_monotone(a in 1i64..30, b in 1i64..30) {
                let (small, large) = (a.min(b), a.max(b));
                let mut z_small = Dbm::zero(1);
                z_small.up();
                z_small.constrain(&ClockConstraint::le(0, small));
                let mut z_large = Dbm::zero(1);
                z_large.up();
                z_large.constrain(&ClockConstraint::le(0, large));
                prop_assert!(z_small.included_in(&z_large));
            }
        }
    }
}
