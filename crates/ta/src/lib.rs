//! Timed automata with zone-based (DBM) reachability analysis.
//!
//! The reproduced paper verifies its slot-sharing scheme by model checking a
//! network of timed automata in UPPAAL. This crate is the workspace's
//! UPPAAL substitute: a small but complete zone-graph reachability engine.
//!
//! * [`dbm`] — difference-bound matrices (zones): delay, reset, constrain,
//!   canonicalization, inclusion and extrapolation.
//! * [`guard`] — clock constraints (`x ≺ c` and diagonal `x − y ≺ c`).
//! * [`automaton`] — a single timed automaton: locations (with invariants,
//!   committed/error flags) and edges (guards, resets, channel
//!   synchronization).
//! * [`network`] — networks of automata communicating over binary channels.
//! * [`explorer`] — the allocation-lean zone-graph engine (interned location
//!   vectors, flat zone arena, bidirectional subsumption, scratch-buffer
//!   successor generation).
//! * [`reachability`] — the public reachability API ("is any error location
//!   reachable?", with a witness trace), backed by the engine, plus the
//!   original clone-heavy BFS kept as [`reachability::reference`] — the
//!   oracle the engine is validated against.
//! * [`model`] — a conservative timed-automata model of TT-slot sharing in
//!   the style of the prior-work analysis the paper compares against: each
//!   application must be granted the slot before its deadline `T_w^*`, holds
//!   it for its worst-case minimum dwell, and the arbiter is nondeterministic.
//!
//! The exact, control-aware verification of the paper (wait-time dependent
//! dwell tables, laxity-EDF arbiter) lives in the `cps-verify` crate; this
//! crate provides the general-purpose timed-automata machinery plus the
//! conservative baseline model used for comparison.
//!
//! # Example
//!
//! ```
//! use cps_ta::{automaton::TimedAutomatonBuilder, guard::ClockConstraint, network::Network,
//!              reachability};
//!
//! # fn main() -> Result<(), cps_ta::TaError> {
//! // A single automaton that must leave its initial location within 5 time
//! // units but can only do so after 10 — the error location is unreachable.
//! let mut builder = TimedAutomatonBuilder::new("demo");
//! let x = builder.add_clock("x");
//! let start = builder.add_location("start");
//! let error = builder.add_error_location("error");
//! builder.set_initial(start);
//! builder.add_invariant(start, ClockConstraint::le(x, 5))?;
//! builder.add_edge(start, error, vec![ClockConstraint::ge(x, 10)], vec![], None)?;
//! let automaton = builder.build()?;
//! let network = Network::new(vec![automaton])?;
//! let result = reachability::check_error_reachability(&network, 10_000)?;
//! assert!(!result.error_reachable());
//! # Ok(())
//! # }
//! ```

pub mod automaton;
pub mod dbm;
mod error;
pub mod explorer;
pub mod guard;
pub mod model;
pub mod network;
pub mod reachability;

pub use automaton::{TimedAutomaton, TimedAutomatonBuilder};
pub use dbm::Dbm;
pub use error::TaError;
pub use explorer::{IndexStats, ZoneGraphExplorer};
pub use guard::ClockConstraint;
pub use network::Network;
pub use reachability::{check_error_reachability, ReachabilityResult};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Dbm>();
        assert_send_sync::<TaError>();
        assert_send_sync::<TimedAutomaton>();
        assert_send_sync::<Network>();
        assert_send_sync::<ReachabilityResult>();
        assert_send_sync::<ZoneGraphExplorer>();
    }
}
