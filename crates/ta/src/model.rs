//! Conservative timed-automata models of TT-slot sharing.
//!
//! The prior-work analysis the paper compares against reasons about slot
//! sharing through a single number per application: the **worst-case blocking
//! time** `B` it can suffer from other occupants of the slot, checked against
//! its **deadline** `D = T_w^*`. This module turns that check into a
//! timed-automata reachability question so that the algebraic schedulability
//! analyses of `cps-baseline` can be cross-validated mechanically:
//!
//! * a *granter* automaton that hands out the slot at some nondeterministic
//!   time within `[0, B]` (its invariant forces the grant by `B` at the
//!   latest), and
//! * an *application* automaton in the style of the paper's Fig. 5
//!   (`ET_Wait → TT → ET_Safe`, with an `Error` location entered when the
//!   wait exceeds the deadline).
//!
//! The error location is reachable **iff** `B > D`, so zone-graph
//! reachability reproduces the arithmetic verdict — and, unlike the
//! arithmetic, it also yields a witness trace.

use crate::automaton::{SyncAction, TimedAutomatonBuilder};
use crate::guard::ClockConstraint;
use crate::network::Network;
use crate::reachability::{check_error_reachability, ReachabilityResult};
use crate::TaError;

/// Timing parameters of one application in the conservative slot-sharing
/// model. All quantities are in samples (the model's integer time unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingModelParams {
    /// The application's deadline for being granted the slot
    /// (`D = T_w^*`).
    pub deadline: i64,
    /// Worst-case time the application keeps the slot once granted (the
    /// prior-work analysis uses the largest minimum dwell `T_dw^{-*}`).
    pub dwell: i64,
    /// Minimum disturbance inter-arrival time `r`.
    pub min_inter_arrival: i64,
    /// Worst-case blocking before the grant (from other slot occupants).
    pub blocking: i64,
}

/// Builds the granter + application network for one application under a given
/// worst-case blocking bound.
///
/// # Errors
///
/// Returns [`TaError::InvalidConstraint`] when a parameter is negative, and
/// propagates automaton construction errors.
pub fn blocking_network(params: BlockingModelParams) -> Result<Network, TaError> {
    if params.deadline < 0
        || params.dwell < 0
        || params.blocking < 0
        || params.min_inter_arrival <= 0
    {
        return Err(TaError::InvalidConstraint {
            reason: "model parameters must be non-negative (r strictly positive)".to_string(),
        });
    }
    const GRANT_CHANNEL: usize = 0;

    // Granter: may grant at any time, but no later than the blocking bound.
    let mut granter = TimedAutomatonBuilder::new("granter");
    let y = granter.add_clock("y");
    let pending = granter.add_location("pending");
    let done = granter.add_location("done");
    granter.set_initial(pending);
    granter.add_invariant(pending, ClockConstraint::le(y, params.blocking))?;
    granter.add_edge(
        pending,
        done,
        vec![],
        vec![],
        Some(SyncAction::Send(GRANT_CHANNEL)),
    )?;

    // Application: waits for the grant, dwells, returns to the safe state.
    let mut app = TimedAutomatonBuilder::new("application");
    let x = app.add_clock("x");
    let waiting = app.add_location("et_wait");
    let using = app.add_location("tt");
    let safe = app.add_location("et_safe");
    let error = app.add_error_location("error");
    app.set_initial(waiting);
    app.add_edge(
        waiting,
        using,
        vec![],
        vec![x],
        Some(SyncAction::Receive(GRANT_CHANNEL)),
    )?;
    app.add_edge(
        waiting,
        error,
        vec![ClockConstraint::gt(x, params.deadline)],
        vec![],
        None,
    )?;
    app.add_invariant(using, ClockConstraint::le(x, params.dwell))?;
    app.add_edge(
        using,
        safe,
        vec![ClockConstraint::ge(x, params.dwell)],
        vec![x],
        None,
    )?;
    app.add_invariant(safe, ClockConstraint::le(x, params.min_inter_arrival))?;

    Network::new(vec![granter.build()?, app.build()?])
}

/// Checks, by zone-graph reachability, whether an application with the given
/// parameters can miss its deadline under the worst-case blocking bound.
///
/// Returns the full [`ReachabilityResult`]; the deadline is missable exactly
/// when the error location is reachable.
///
/// # Errors
///
/// Propagates model construction and exploration errors.
pub fn check_blocking_bound(params: BlockingModelParams) -> Result<ReachabilityResult, TaError> {
    let network = blocking_network(params)?;
    check_error_reachability(&network, 100_000)
}

/// Convenience predicate: `true` when the application is guaranteed to meet
/// its deadline under the given worst-case blocking.
///
/// # Errors
///
/// Propagates model construction and exploration errors.
pub fn blocking_bound_is_safe(params: BlockingModelParams) -> Result<bool, TaError> {
    Ok(!check_blocking_bound(params)?.error_reachable())
}

/// Timing parameters of one application in the TDMA-style slot-sharing
/// network built by [`slot_sharing_network`]. All quantities are in samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotAppParams {
    /// Deadline `D = T_w^*` for being granted the slot after a disturbance.
    pub deadline: i64,
    /// Time the application keeps the slot once granted (`T_dw^{-*}`).
    pub dwell: i64,
    /// Minimum disturbance inter-arrival time `r`.
    pub min_inter_arrival: i64,
}

/// Builds a FlexRay-style TDMA slot-sharing network: one *granter* automaton
/// cycling through the applications' slot windows (each at most
/// `slot_length` long, granting or skipping nondeterministically), plus one
/// automaton per application in the style of the paper's Fig. 5
/// (`ET_Wait → TT → ET_Safe`, with an `Error` location entered when the wait
/// exceeds the deadline).
///
/// The wait of application `i` is bounded by the full cycle
/// `n · slot_length` through an invariant, so its error location is
/// reachable **iff** its deadline is shorter than the worst-case cycle the
/// granter can impose — the composed zone graph grows quickly with the
/// number of applications and the constants, which makes this family the
/// `bench_reach` scaling workload.
///
/// # Errors
///
/// Returns [`TaError::InvalidConstraint`] when `apps` is empty, a parameter
/// is negative, `slot_length` is not positive or `r` is not positive.
pub fn slot_sharing_network(apps: &[SlotAppParams], slot_length: i64) -> Result<Network, TaError> {
    if apps.is_empty() {
        return Err(TaError::InvalidConstraint {
            reason: "slot-sharing network needs at least one application".to_string(),
        });
    }
    if slot_length <= 0 {
        return Err(TaError::InvalidConstraint {
            reason: "slot length must be strictly positive".to_string(),
        });
    }
    for params in apps {
        if params.deadline < 0 || params.dwell < 0 || params.min_inter_arrival <= 0 {
            return Err(TaError::InvalidConstraint {
                reason: "application parameters must be non-negative (r strictly positive)"
                    .to_string(),
            });
        }
    }
    let cycle = slot_length * apps.len() as i64;

    // Granter: one location per slot window; within a window it may grant
    // the window's application (if that application is waiting) or skip; the
    // invariant forces the window to close after `slot_length`.
    let mut granter = TimedAutomatonBuilder::new("granter");
    let y = granter.add_clock("y");
    let windows: Vec<_> = (0..apps.len())
        .map(|i| granter.add_location(format!("slot{i}")))
        .collect();
    granter.set_initial(windows[0]);
    for (i, &window) in windows.iter().enumerate() {
        let next = windows[(i + 1) % windows.len()];
        granter.add_invariant(window, ClockConstraint::le(y, slot_length))?;
        granter.add_edge(window, next, vec![], vec![y], Some(SyncAction::Send(i)))?;
        granter.add_edge(window, next, vec![], vec![y], None)?;
    }

    let mut automata = vec![granter.build()?];
    for (i, params) in apps.iter().enumerate() {
        let mut app = TimedAutomatonBuilder::new(format!("app{i}"));
        let x = app.add_clock("x");
        let waiting = app.add_location("et_wait");
        let using = app.add_location("tt");
        let safe = app.add_location("et_safe");
        let error = app.add_error_location("error");
        app.set_initial(waiting);
        // The cycle bound plays the role of the worst-case blocking window.
        app.add_invariant(waiting, ClockConstraint::le(x, cycle))?;
        app.add_edge(
            waiting,
            using,
            vec![],
            vec![x],
            Some(SyncAction::Receive(i)),
        )?;
        app.add_edge(
            waiting,
            error,
            vec![ClockConstraint::gt(x, params.deadline)],
            vec![],
            None,
        )?;
        app.add_invariant(using, ClockConstraint::le(x, params.dwell))?;
        app.add_edge(
            using,
            safe,
            vec![ClockConstraint::ge(x, params.dwell)],
            vec![x],
            None,
        )?;
        app.add_invariant(safe, ClockConstraint::le(x, params.min_inter_arrival))?;
        app.add_edge(
            safe,
            waiting,
            vec![ClockConstraint::ge(x, params.min_inter_arrival)],
            vec![x],
            None,
        )?;
        automata.push(app.build()?);
    }
    Network::new(automata)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(deadline: i64, blocking: i64) -> BlockingModelParams {
        BlockingModelParams {
            deadline,
            dwell: 4,
            min_inter_arrival: 25,
            blocking,
        }
    }

    #[test]
    fn blocking_within_deadline_is_safe() {
        assert!(blocking_bound_is_safe(params(11, 7)).unwrap());
        assert!(blocking_bound_is_safe(params(11, 11)).unwrap());
        assert!(blocking_bound_is_safe(params(0, 0)).unwrap());
    }

    #[test]
    fn blocking_beyond_deadline_reaches_the_error() {
        let result = check_blocking_bound(params(11, 12)).unwrap();
        assert!(result.error_reachable());
        // The witness ends in the application's error location (index 3).
        let witness = result.witness().unwrap();
        assert_eq!(witness.last().unwrap()[1], 3);
    }

    #[test]
    fn verdict_matches_the_arithmetic_over_a_grid() {
        for deadline in 0..8 {
            for blocking in 0..8 {
                let safe = blocking_bound_is_safe(params(deadline, blocking)).unwrap();
                assert_eq!(
                    safe,
                    blocking <= deadline,
                    "deadline {deadline}, blocking {blocking}"
                );
            }
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(blocking_network(BlockingModelParams {
            deadline: -1,
            dwell: 4,
            min_inter_arrival: 25,
            blocking: 0,
        })
        .is_err());
        assert!(blocking_network(BlockingModelParams {
            deadline: 1,
            dwell: 4,
            min_inter_arrival: 0,
            blocking: 0,
        })
        .is_err());
    }

    #[test]
    fn exploration_stays_small() {
        let result = check_blocking_bound(params(11, 7)).unwrap();
        assert!(result.states_explored() < 50);
    }

    fn slot_apps(count: usize, deadline: i64) -> Vec<SlotAppParams> {
        vec![
            SlotAppParams {
                deadline,
                dwell: 3,
                min_inter_arrival: 20,
            };
            count
        ]
    }

    #[test]
    fn slot_sharing_rejects_invalid_parameters() {
        assert!(slot_sharing_network(&[], 5).is_err());
        assert!(slot_sharing_network(&slot_apps(1, 10), 0).is_err());
        assert!(slot_sharing_network(
            &[SlotAppParams {
                deadline: -1,
                dwell: 3,
                min_inter_arrival: 20,
            }],
            5
        )
        .is_err());
    }

    #[test]
    fn slot_sharing_deadline_beyond_the_cycle_is_safe() {
        // Two applications, slot length 4 → worst-case cycle 8; deadlines of
        // 8 can always be met, so the error is unreachable.
        let network = slot_sharing_network(&slot_apps(2, 8), 4).unwrap();
        let result = check_error_reachability(&network, 100_000).unwrap();
        assert!(!result.error_reachable());
    }

    #[test]
    fn slot_sharing_tight_deadline_reaches_the_error() {
        // A deadline shorter than the cycle can be missed when the granter
        // skips the application's window.
        let network = slot_sharing_network(&slot_apps(2, 5), 4).unwrap();
        let result = check_error_reachability(&network, 100_000).unwrap();
        assert!(result.error_reachable());
        let witness = result.witness().unwrap();
        // The last vector contains an application in its error location (3).
        assert!(witness.last().unwrap()[1..].contains(&3));
    }

    #[test]
    fn slot_sharing_engine_agrees_with_reference() {
        // Three-application networks take minutes in the reference engine
        // (that asymmetry is exactly what `bench_reach` measures); the unit
        // test sticks to one- and two-application models.
        for (count, deadline, slot) in [(1, 2, 3), (2, 8, 4), (2, 5, 4)] {
            let network = slot_sharing_network(&slot_apps(count, deadline), slot).unwrap();
            let engine = check_error_reachability(&network, 500_000).unwrap();
            let reference =
                crate::reachability::reference::check_error_reachability(&network, 500_000)
                    .unwrap();
            assert_eq!(engine.error_reachable(), reference.error_reachable());
        }
    }
}
