//! Conservative timed-automata models of TT-slot sharing.
//!
//! The prior-work analysis the paper compares against reasons about slot
//! sharing through a single number per application: the **worst-case blocking
//! time** `B` it can suffer from other occupants of the slot, checked against
//! its **deadline** `D = T_w^*`. This module turns that check into a
//! timed-automata reachability question so that the algebraic schedulability
//! analyses of `cps-baseline` can be cross-validated mechanically:
//!
//! * a *granter* automaton that hands out the slot at some nondeterministic
//!   time within `[0, B]` (its invariant forces the grant by `B` at the
//!   latest), and
//! * an *application* automaton in the style of the paper's Fig. 5
//!   (`ET_Wait → TT → ET_Safe`, with an `Error` location entered when the
//!   wait exceeds the deadline).
//!
//! The error location is reachable **iff** `B > D`, so zone-graph
//! reachability reproduces the arithmetic verdict — and, unlike the
//! arithmetic, it also yields a witness trace.

use crate::automaton::{SyncAction, TimedAutomatonBuilder};
use crate::guard::ClockConstraint;
use crate::network::Network;
use crate::reachability::{check_error_reachability, ReachabilityResult};
use crate::TaError;

/// Timing parameters of one application in the conservative slot-sharing
/// model. All quantities are in samples (the model's integer time unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingModelParams {
    /// The application's deadline for being granted the slot
    /// (`D = T_w^*`).
    pub deadline: i64,
    /// Worst-case time the application keeps the slot once granted (the
    /// prior-work analysis uses the largest minimum dwell `T_dw^{-*}`).
    pub dwell: i64,
    /// Minimum disturbance inter-arrival time `r`.
    pub min_inter_arrival: i64,
    /// Worst-case blocking before the grant (from other slot occupants).
    pub blocking: i64,
}

/// Builds the granter + application network for one application under a given
/// worst-case blocking bound.
///
/// # Errors
///
/// Returns [`TaError::InvalidConstraint`] when a parameter is negative, and
/// propagates automaton construction errors.
pub fn blocking_network(params: BlockingModelParams) -> Result<Network, TaError> {
    if params.deadline < 0
        || params.dwell < 0
        || params.blocking < 0
        || params.min_inter_arrival <= 0
    {
        return Err(TaError::InvalidConstraint {
            reason: "model parameters must be non-negative (r strictly positive)".to_string(),
        });
    }
    const GRANT_CHANNEL: usize = 0;

    // Granter: may grant at any time, but no later than the blocking bound.
    let mut granter = TimedAutomatonBuilder::new("granter");
    let y = granter.add_clock("y");
    let pending = granter.add_location("pending");
    let done = granter.add_location("done");
    granter.set_initial(pending);
    granter.add_invariant(pending, ClockConstraint::le(y, params.blocking))?;
    granter.add_edge(
        pending,
        done,
        vec![],
        vec![],
        Some(SyncAction::Send(GRANT_CHANNEL)),
    )?;

    // Application: waits for the grant, dwells, returns to the safe state.
    let mut app = TimedAutomatonBuilder::new("application");
    let x = app.add_clock("x");
    let waiting = app.add_location("et_wait");
    let using = app.add_location("tt");
    let safe = app.add_location("et_safe");
    let error = app.add_error_location("error");
    app.set_initial(waiting);
    app.add_edge(
        waiting,
        using,
        vec![],
        vec![x],
        Some(SyncAction::Receive(GRANT_CHANNEL)),
    )?;
    app.add_edge(
        waiting,
        error,
        vec![ClockConstraint::gt(x, params.deadline)],
        vec![],
        None,
    )?;
    app.add_invariant(using, ClockConstraint::le(x, params.dwell))?;
    app.add_edge(
        using,
        safe,
        vec![ClockConstraint::ge(x, params.dwell)],
        vec![x],
        None,
    )?;
    app.add_invariant(safe, ClockConstraint::le(x, params.min_inter_arrival))?;

    Network::new(vec![granter.build()?, app.build()?])
}

/// Checks, by zone-graph reachability, whether an application with the given
/// parameters can miss its deadline under the worst-case blocking bound.
///
/// Returns the full [`ReachabilityResult`]; the deadline is missable exactly
/// when the error location is reachable.
///
/// # Errors
///
/// Propagates model construction and exploration errors.
pub fn check_blocking_bound(params: BlockingModelParams) -> Result<ReachabilityResult, TaError> {
    let network = blocking_network(params)?;
    check_error_reachability(&network, 100_000)
}

/// Convenience predicate: `true` when the application is guaranteed to meet
/// its deadline under the given worst-case blocking.
///
/// # Errors
///
/// Propagates model construction and exploration errors.
pub fn blocking_bound_is_safe(params: BlockingModelParams) -> Result<bool, TaError> {
    Ok(!check_blocking_bound(params)?.error_reachable())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(deadline: i64, blocking: i64) -> BlockingModelParams {
        BlockingModelParams {
            deadline,
            dwell: 4,
            min_inter_arrival: 25,
            blocking,
        }
    }

    #[test]
    fn blocking_within_deadline_is_safe() {
        assert!(blocking_bound_is_safe(params(11, 7)).unwrap());
        assert!(blocking_bound_is_safe(params(11, 11)).unwrap());
        assert!(blocking_bound_is_safe(params(0, 0)).unwrap());
    }

    #[test]
    fn blocking_beyond_deadline_reaches_the_error() {
        let result = check_blocking_bound(params(11, 12)).unwrap();
        assert!(result.error_reachable());
        // The witness ends in the application's error location (index 3).
        let witness = result.witness().unwrap();
        assert_eq!(witness.last().unwrap()[1], 3);
    }

    #[test]
    fn verdict_matches_the_arithmetic_over_a_grid() {
        for deadline in 0..8 {
            for blocking in 0..8 {
                let safe = blocking_bound_is_safe(params(deadline, blocking)).unwrap();
                assert_eq!(
                    safe,
                    blocking <= deadline,
                    "deadline {deadline}, blocking {blocking}"
                );
            }
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(blocking_network(BlockingModelParams {
            deadline: -1,
            dwell: 4,
            min_inter_arrival: 25,
            blocking: 0,
        })
        .is_err());
        assert!(blocking_network(BlockingModelParams {
            deadline: 1,
            dwell: 4,
            min_inter_arrival: 0,
            blocking: 0,
        })
        .is_err());
    }

    #[test]
    fn exploration_stays_small() {
        let result = check_blocking_bound(params(11, 7)).unwrap();
        assert!(result.states_explored() < 50);
    }
}
