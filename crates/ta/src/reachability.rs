//! Zone-graph reachability analysis.
//!
//! The public entry point [`check_error_reachability`] runs the
//! allocation-lean [`crate::explorer::ZoneGraphExplorer`]; the original
//! clone-per-transition breadth-first search is kept verbatim (modulo the
//! budget-accounting fix) as [`reference::check_error_reachability`] and acts
//! as the correctness oracle for the engine — tests and the `bench_reach`
//! harness assert verdict and witness equivalence between the two.

use std::collections::{HashMap, VecDeque};

use crate::automaton::LocationId;
use crate::explorer::ZoneGraphExplorer;
use crate::network::Network;
use crate::TaError;

/// The result of a reachability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityResult {
    error_reachable: bool,
    states_explored: usize,
    witness: Option<Vec<Vec<LocationId>>>,
}

impl ReachabilityResult {
    pub(crate) fn new(
        error_reachable: bool,
        states_explored: usize,
        witness: Option<Vec<Vec<LocationId>>>,
    ) -> Self {
        ReachabilityResult {
            error_reachable,
            states_explored,
            witness,
        }
    }

    /// Whether any error location is reachable.
    pub fn error_reachable(&self) -> bool {
        self.error_reachable
    }

    /// Number of symbolic states that were popped and expanded.
    pub fn states_explored(&self) -> usize {
        self.states_explored
    }

    /// A witness trace (sequence of location vectors from the initial state
    /// to the error state) when the error is reachable.
    pub fn witness(&self) -> Option<&[Vec<LocationId>]> {
        self.witness.as_deref()
    }
}

/// Checks whether any error location of the network is reachable, using the
/// allocation-lean [`ZoneGraphExplorer`] engine.
///
/// `state_budget` bounds the number of symbolic states explored (popped and
/// expanded); exceeding it returns [`TaError::StateBudgetExhausted`] rather
/// than an incorrect verdict.
///
/// # Errors
///
/// Returns [`TaError::StateBudgetExhausted`] when the exploration exceeds the
/// budget.
pub fn check_error_reachability(
    network: &Network,
    state_budget: usize,
) -> Result<ReachabilityResult, TaError> {
    ZoneGraphExplorer::new().check(network, state_budget)
}

/// The original breadth-first zone-graph search, kept as the oracle the
/// engine is validated against.
pub mod reference {
    use super::*;
    use crate::dbm::Dbm;

    /// One symbolic state of the zone graph.
    #[derive(Debug, Clone)]
    struct SymbolicState {
        locations: Vec<LocationId>,
        zone: Dbm,
        parent: Option<usize>,
    }

    /// Checks whether any error location of the network is reachable, by
    /// cloning the location vector and zone on every transition (the naive
    /// formulation the engine is measured against).
    ///
    /// `state_budget` bounds the number of symbolic states explored (popped
    /// off the frontier), so the error message and
    /// [`ReachabilityResult::states_explored`] agree on what was counted.
    ///
    /// # Errors
    ///
    /// Returns [`TaError::StateBudgetExhausted`] when the exploration exceeds
    /// the budget.
    pub fn check_error_reachability(
        network: &Network,
        state_budget: usize,
    ) -> Result<ReachabilityResult, TaError> {
        let max_constant = network.max_constant();
        let clocks = network.total_clocks();

        // Initial symbolic state: all clocks zero, constrained by the
        // invariants, then (if no committed location) allowed to delay within
        // the invariants.
        let initial_locations = network.initial_locations();
        let mut initial_zone = Dbm::zero(clocks);
        apply_invariants_and_delay(network, &initial_locations, &mut initial_zone);

        let mut states: Vec<SymbolicState> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        // Visited zones per location vector, used for the inclusion check.
        let mut visited: HashMap<Vec<LocationId>, Vec<Dbm>> = HashMap::new();

        states.push(SymbolicState {
            locations: initial_locations.clone(),
            zone: initial_zone.clone(),
            parent: None,
        });
        queue.push_back(0);
        visited.insert(initial_locations.clone(), vec![initial_zone]);

        let mut explored = 0usize;
        while let Some(index) = queue.pop_front() {
            explored += 1;
            if explored > state_budget {
                return Err(TaError::StateBudgetExhausted {
                    budget: state_budget,
                });
            }
            let current_locations = states[index].locations.clone();
            let current_zone = states[index].zone.clone();

            if network.any_error(&current_locations) {
                return Ok(ReachabilityResult::new(
                    true,
                    explored,
                    Some(reconstruct_trace(&states, index)),
                ));
            }

            let mut successors: Vec<(Vec<LocationId>, Dbm)> = Vec::new();

            // Non-synchronizing edges.
            for (automaton_index, edge) in network.local_edges(&current_locations) {
                let mut zone = current_zone.clone();
                for constraint in network.global_guard(automaton_index, edge) {
                    zone.constrain(&constraint);
                }
                if zone.is_empty() {
                    continue;
                }
                for clock in network.global_resets(automaton_index, edge) {
                    zone.reset(clock);
                }
                let mut locations = current_locations.clone();
                locations[automaton_index] = edge.target();
                apply_invariants_and_delay(network, &locations, &mut zone);
                if zone.is_empty() {
                    continue;
                }
                zone.extrapolate(max_constant);
                successors.push((locations, zone));
            }

            // Synchronizing edge pairs.
            for (send_index, send_edge, recv_index, recv_edge) in
                network.sync_pairs(&current_locations)
            {
                let mut zone = current_zone.clone();
                for constraint in network.global_guard(send_index, send_edge) {
                    zone.constrain(&constraint);
                }
                for constraint in network.global_guard(recv_index, recv_edge) {
                    zone.constrain(&constraint);
                }
                if zone.is_empty() {
                    continue;
                }
                for clock in network.global_resets(send_index, send_edge) {
                    zone.reset(clock);
                }
                for clock in network.global_resets(recv_index, recv_edge) {
                    zone.reset(clock);
                }
                let mut locations = current_locations.clone();
                locations[send_index] = send_edge.target();
                locations[recv_index] = recv_edge.target();
                apply_invariants_and_delay(network, &locations, &mut zone);
                if zone.is_empty() {
                    continue;
                }
                zone.extrapolate(max_constant);
                successors.push((locations, zone));
            }

            for (locations, zone) in successors {
                let seen = visited.entry(locations.clone()).or_default();
                if seen.iter().any(|existing| zone.included_in(existing)) {
                    continue;
                }
                seen.push(zone.clone());
                states.push(SymbolicState {
                    locations,
                    zone,
                    parent: Some(index),
                });
                queue.push_back(states.len() - 1);
            }
        }

        Ok(ReachabilityResult::new(false, explored, None))
    }

    /// Conjoins the invariants of the location vector and, unless a committed
    /// location forbids it, lets time pass (bounded again by the invariants).
    fn apply_invariants_and_delay(network: &Network, locations: &[LocationId], zone: &mut Dbm) {
        for constraint in network.invariants(locations) {
            zone.constrain(&constraint);
        }
        if zone.is_empty() {
            return;
        }
        if !network.any_committed(locations) {
            zone.up();
            for constraint in network.invariants(locations) {
                zone.constrain(&constraint);
            }
        }
    }

    fn reconstruct_trace(states: &[SymbolicState], mut index: usize) -> Vec<Vec<LocationId>> {
        let mut trace = vec![states[index].locations.clone()];
        while let Some(parent) = states[index].parent {
            index = parent;
            trace.push(states[index].locations.clone());
        }
        trace.reverse();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{SyncAction, TimedAutomatonBuilder};
    use crate::guard::ClockConstraint;

    /// Runs both the engine and the oracle, asserts verdict agreement and
    /// witness shape equivalence, and returns the engine's result.
    fn check_both(network: &Network, budget: usize) -> ReachabilityResult {
        let engine = check_error_reachability(network, budget).unwrap();
        let oracle = reference::check_error_reachability(network, budget).unwrap();
        assert_eq!(
            engine.error_reachable(),
            oracle.error_reachable(),
            "engine and reference disagree on the verdict"
        );
        assert_eq!(engine.witness().is_some(), oracle.witness().is_some());
        if let (Some(e), Some(o)) = (engine.witness(), oracle.witness()) {
            // Both witnesses start at the initial vector and end in an error
            // vector; the paths may differ (subsumption reorders the search).
            assert_eq!(e.first(), o.first());
            assert!(network.any_error(e.last().unwrap()));
            assert!(network.any_error(o.last().unwrap()));
        }
        engine
    }

    /// A single automaton where the error can only be reached after waiting
    /// longer than the invariant allows — i.e. it is unreachable.
    fn deadline_met() -> Network {
        let mut b = TimedAutomatonBuilder::new("deadline");
        let x = b.add_clock("x");
        let wait = b.add_location("wait");
        let done = b.add_location("done");
        let error = b.add_error_location("error");
        b.set_initial(wait);
        b.add_invariant(wait, ClockConstraint::le(x, 5)).unwrap();
        b.add_edge(wait, done, vec![ClockConstraint::ge(x, 1)], vec![], None)
            .unwrap();
        b.add_edge(wait, error, vec![ClockConstraint::gt(x, 5)], vec![], None)
            .unwrap();
        Network::new(vec![b.build().unwrap()]).unwrap()
    }

    /// Same shape, but the invariant is loose enough for the error guard.
    fn deadline_missed() -> Network {
        let mut b = TimedAutomatonBuilder::new("deadline");
        let x = b.add_clock("x");
        let wait = b.add_location("wait");
        let error = b.add_error_location("error");
        b.set_initial(wait);
        b.add_invariant(wait, ClockConstraint::le(x, 10)).unwrap();
        b.add_edge(wait, error, vec![ClockConstraint::gt(x, 5)], vec![], None)
            .unwrap();
        Network::new(vec![b.build().unwrap()]).unwrap()
    }

    #[test]
    fn unreachable_error_is_reported_as_safe() {
        let result = check_both(&deadline_met(), 10_000);
        assert!(!result.error_reachable());
        assert!(result.witness().is_none());
        assert!(result.states_explored() >= 1);
    }

    #[test]
    fn reachable_error_produces_a_witness() {
        let result = check_both(&deadline_missed(), 10_000);
        assert!(result.error_reachable());
        let witness = result.witness().unwrap();
        assert_eq!(witness.first().unwrap(), &vec![0]);
        assert_eq!(witness.last().unwrap(), &vec![1]);
    }

    #[test]
    fn budget_exhaustion_is_an_error_not_a_verdict() {
        for run in [
            check_error_reachability(&deadline_missed(), 1),
            reference::check_error_reachability(&deadline_missed(), 1),
        ] {
            assert!(matches!(run, Err(TaError::StateBudgetExhausted { .. })));
        }
    }

    #[test]
    fn budget_counts_popped_states_not_discovered_ones() {
        // The initial state fans out into an error state plus two decoys, so
        // after the second pop the error is found with 2 states *explored*
        // but 4 states *discovered*. Under the old discovered-count
        // semantics a budget of 3 would be (wrongly) exhausted before the
        // error check; counting popped states it must succeed and report
        // exactly the metered number.
        let mut b = TimedAutomatonBuilder::new("fanout");
        let start = b.add_location("start");
        let err = b.add_error_location("err");
        let decoy_a = b.add_location("a");
        let decoy_b = b.add_location("b");
        b.set_initial(start);
        for target in [err, decoy_a, decoy_b] {
            b.add_edge(start, target, vec![], vec![], None).unwrap();
        }
        let network = Network::new(vec![b.build().unwrap()]).unwrap();
        for result in [
            reference::check_error_reachability(&network, 3).unwrap(),
            check_error_reachability(&network, 3).unwrap(),
        ] {
            assert!(result.error_reachable());
            assert_eq!(result.states_explored(), 2);
        }
        // A budget of 1 is genuinely exhausted by the second pop.
        for run in [
            reference::check_error_reachability(&network, 1),
            check_error_reachability(&network, 1),
        ] {
            assert!(matches!(
                run,
                Err(TaError::StateBudgetExhausted { budget: 1 })
            ));
        }
    }

    #[test]
    fn synchronization_is_required_to_reach_the_error() {
        // The receiver can only reach its error location after the sender
        // emits on the channel, which the sender can only do after x ≥ 3.
        let mut sender = TimedAutomatonBuilder::new("sender");
        let x = sender.add_clock("x");
        let s0 = sender.add_location("s0");
        let s1 = sender.add_location("s1");
        sender.set_initial(s0);
        sender
            .add_edge(
                s0,
                s1,
                vec![ClockConstraint::ge(x, 3)],
                vec![],
                Some(SyncAction::Send(0)),
            )
            .unwrap();

        let mut receiver = TimedAutomatonBuilder::new("receiver");
        let r0 = receiver.add_location("r0");
        let bad = receiver.add_error_location("bad");
        receiver.set_initial(r0);
        receiver
            .add_edge(r0, bad, vec![], vec![], Some(SyncAction::Receive(0)))
            .unwrap();

        let network =
            Network::new(vec![sender.build().unwrap(), receiver.build().unwrap()]).unwrap();
        let result = check_both(&network, 10_000);
        assert!(result.error_reachable());
        // The witness passes through the synchronized transition.
        assert_eq!(result.witness().unwrap().last().unwrap(), &vec![1, 1]);
    }

    #[test]
    fn unmatched_send_cannot_fire() {
        // A sender with no matching receiver can never move, so its error
        // location (behind the send) stays unreachable.
        let mut sender = TimedAutomatonBuilder::new("sender");
        let s0 = sender.add_location("s0");
        let bad = sender.add_error_location("bad");
        sender.set_initial(s0);
        sender
            .add_edge(s0, bad, vec![], vec![], Some(SyncAction::Send(0)))
            .unwrap();

        let mut other = TimedAutomatonBuilder::new("other");
        let o0 = other.add_location("o0");
        other.set_initial(o0);

        let network = Network::new(vec![sender.build().unwrap(), other.build().unwrap()]).unwrap();
        let result = check_both(&network, 1_000);
        assert!(!result.error_reachable());
    }

    #[test]
    fn committed_locations_do_not_let_time_pass() {
        // From a committed location the only outgoing edge requires x ≥ 1,
        // which can never be satisfied because time cannot advance there.
        let mut b = TimedAutomatonBuilder::new("committed");
        let x = b.add_clock("x");
        let c = b.add_committed_location("c");
        let bad = b.add_error_location("bad");
        b.set_initial(c);
        b.add_edge(c, bad, vec![ClockConstraint::ge(x, 1)], vec![], None)
            .unwrap();
        let network = Network::new(vec![b.build().unwrap()]).unwrap();
        let result = check_both(&network, 1_000);
        assert!(!result.error_reachable());
    }

    #[test]
    fn zone_inclusion_keeps_cyclic_models_finite() {
        // A self-loop that resets its clock forever: without inclusion checks
        // the exploration would not terminate.
        let mut b = TimedAutomatonBuilder::new("loop");
        let x = b.add_clock("x");
        let l = b.add_location("l");
        b.set_initial(l);
        b.add_invariant(l, ClockConstraint::le(x, 4)).unwrap();
        b.add_edge(l, l, vec![ClockConstraint::ge(x, 2)], vec![x], None)
            .unwrap();
        let network = Network::new(vec![b.build().unwrap()]).unwrap();
        let result = check_both(&network, 1_000);
        assert!(!result.error_reachable());
        assert!(result.states_explored() < 10);
    }

    #[test]
    fn explorer_is_reusable_across_networks() {
        let mut explorer = ZoneGraphExplorer::new();
        let safe = explorer.check(&deadline_met(), 10_000).unwrap();
        assert!(!safe.error_reachable());
        let unsafe_ = explorer.check(&deadline_missed(), 10_000).unwrap();
        assert!(unsafe_.error_reachable());
        // Back-to-back repeat runs are deterministic.
        let again = explorer.check(&deadline_met(), 10_000).unwrap();
        assert_eq!(safe, again);
    }
}
