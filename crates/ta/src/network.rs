//! Networks of timed automata with binary channel synchronization.
//!
//! A network is the parallel composition of several automata. Each automaton
//! keeps its own clocks (ids are shifted into a global clock space when the
//! network is built) and locations; edges either fire alone (no
//! synchronization label) or in sender/receiver pairs over a shared channel.

use crate::automaton::{Edge, LocationId, SyncAction, TimedAutomaton};
use crate::guard::ClockConstraint;
use crate::TaError;

/// The parallel composition of several timed automata.
///
/// # Example
///
/// ```
/// use cps_ta::automaton::{SyncAction, TimedAutomatonBuilder};
/// use cps_ta::network::Network;
///
/// # fn main() -> Result<(), cps_ta::TaError> {
/// let mut sender = TimedAutomatonBuilder::new("sender");
/// let s0 = sender.add_location("s0");
/// let s1 = sender.add_location("s1");
/// sender.set_initial(s0);
/// sender.add_edge(s0, s1, vec![], vec![], Some(SyncAction::Send(0)))?;
///
/// let mut receiver = TimedAutomatonBuilder::new("receiver");
/// let r0 = receiver.add_location("r0");
/// let r1 = receiver.add_location("r1");
/// receiver.set_initial(r0);
/// receiver.add_edge(r0, r1, vec![], vec![], Some(SyncAction::Receive(0)))?;
///
/// let network = Network::new(vec![sender.build()?, receiver.build()?])?;
/// assert_eq!(network.automata().len(), 2);
/// assert_eq!(network.total_clocks(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    automata: Vec<TimedAutomaton>,
    clock_offsets: Vec<usize>,
    total_clocks: usize,
}

impl Network {
    /// Composes the given automata into a network.
    ///
    /// # Errors
    ///
    /// Returns [`TaError::EmptyNetwork`] when no automata are supplied.
    pub fn new(automata: Vec<TimedAutomaton>) -> Result<Self, TaError> {
        if automata.is_empty() {
            return Err(TaError::EmptyNetwork);
        }
        let mut clock_offsets = Vec::with_capacity(automata.len());
        let mut total_clocks = 0;
        for automaton in &automata {
            clock_offsets.push(total_clocks);
            total_clocks += automaton.clock_count();
        }
        Ok(Network {
            automata,
            clock_offsets,
            total_clocks,
        })
    }

    /// The composed automata in composition order.
    pub fn automata(&self) -> &[TimedAutomaton] {
        &self.automata
    }

    /// Total number of clocks across the network.
    pub fn total_clocks(&self) -> usize {
        self.total_clocks
    }

    /// The offset added to automaton `index`'s local clock ids in the global
    /// clock space.
    pub fn clock_offset(&self, index: usize) -> usize {
        self.clock_offsets[index]
    }

    /// The initial location vector of the network.
    pub fn initial_locations(&self) -> Vec<LocationId> {
        self.automata.iter().map(|a| a.initial()).collect()
    }

    /// The largest constant appearing anywhere in the network (extrapolation
    /// bound).
    pub fn max_constant(&self) -> i64 {
        self.automata
            .iter()
            .map(|a| a.max_constant())
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` when any automaton currently sits in a committed
    /// location for the given location vector.
    pub fn any_committed(&self, locations: &[LocationId]) -> bool {
        self.automata
            .iter()
            .zip(locations.iter())
            .any(|(a, &l)| a.locations()[l].is_committed())
    }

    /// Returns `true` when any automaton sits in an error location.
    pub fn any_error(&self, locations: &[LocationId]) -> bool {
        self.automata
            .iter()
            .zip(locations.iter())
            .any(|(a, &l)| a.locations()[l].is_error())
    }

    /// The invariant constraints (in global clock ids) of a location vector.
    pub fn invariants(&self, locations: &[LocationId]) -> Vec<ClockConstraint> {
        self.invariants_iter(locations).collect()
    }

    /// Allocation-free variant of [`Network::invariants`]: streams the
    /// invariant constraints of a location vector in global clock ids.
    pub fn invariants_iter<'a>(
        &'a self,
        locations: &'a [LocationId],
    ) -> impl Iterator<Item = ClockConstraint> + 'a {
        self.automata
            .iter()
            .zip(locations.iter())
            .enumerate()
            .flat_map(move |(index, (automaton, &location))| {
                let offset = self.clock_offsets[index];
                automaton.locations()[location]
                    .invariant()
                    .iter()
                    .map(move |c| c.shift_clocks(offset))
            })
    }

    /// Shifts an edge's guard into the global clock space.
    pub fn global_guard(&self, automaton_index: usize, edge: &Edge) -> Vec<ClockConstraint> {
        self.guard_iter(automaton_index, edge).collect()
    }

    /// Allocation-free variant of [`Network::global_guard`].
    pub fn guard_iter<'a>(
        &self,
        automaton_index: usize,
        edge: &'a Edge,
    ) -> impl Iterator<Item = ClockConstraint> + 'a {
        let offset = self.clock_offsets[automaton_index];
        edge.guard().iter().map(move |c| c.shift_clocks(offset))
    }

    /// Shifts an edge's resets into the global clock space.
    pub fn global_resets(&self, automaton_index: usize, edge: &Edge) -> Vec<usize> {
        self.resets_iter(automaton_index, edge).collect()
    }

    /// Allocation-free variant of [`Network::global_resets`].
    pub fn resets_iter<'a>(
        &self,
        automaton_index: usize,
        edge: &'a Edge,
    ) -> impl Iterator<Item = usize> + 'a {
        let offset = self.clock_offsets[automaton_index];
        edge.resets().iter().map(move |&c| c + offset)
    }

    /// All enabled non-synchronizing edges from a location vector, as
    /// `(automaton index, edge)` pairs. Committed-location priority is
    /// respected: if any automaton is committed, only edges leaving committed
    /// locations are returned.
    pub fn local_edges<'a>(
        &'a self,
        locations: &'a [LocationId],
    ) -> impl Iterator<Item = (usize, &'a Edge)> + 'a {
        let committed = self.any_committed(locations);
        self.automata
            .iter()
            .enumerate()
            .flat_map(move |(index, automaton)| {
                automaton
                    .edges_from(locations[index])
                    .map(move |edge| (index, edge))
            })
            .filter(move |(index, edge)| {
                edge.sync().is_none()
                    && (!committed
                        || self.automata[*index].locations()[locations[*index]].is_committed())
            })
    }

    /// All enabled synchronizing edge pairs from a location vector, as
    /// `(sender automaton, sender edge, receiver automaton, receiver edge)`.
    /// Committed-location priority is respected: when any automaton is
    /// committed, at least one of the pair must leave a committed location.
    pub fn sync_pairs<'a>(
        &'a self,
        locations: &'a [LocationId],
    ) -> Vec<(usize, &'a Edge, usize, &'a Edge)> {
        let mut pairs = Vec::new();
        self.sync_pairs_into(locations, &mut pairs);
        pairs
    }

    /// Buffer-reusing variant of [`Network::sync_pairs`]: clears `out` and
    /// fills it with the enabled synchronizing edge pairs, so a caller that
    /// explores many states can keep one buffer alive instead of allocating a
    /// fresh vector per state.
    pub fn sync_pairs_into<'a>(
        &'a self,
        locations: &[LocationId],
        out: &mut Vec<(usize, &'a Edge, usize, &'a Edge)>,
    ) {
        out.clear();
        let committed = self.any_committed(locations);
        let pairs = out;
        for (sender_index, sender) in self.automata.iter().enumerate() {
            for sender_edge in sender.edges_from(locations[sender_index]) {
                let Some(SyncAction::Send(channel)) = sender_edge.sync() else {
                    continue;
                };
                for (receiver_index, receiver) in self.automata.iter().enumerate() {
                    if receiver_index == sender_index {
                        continue;
                    }
                    for receiver_edge in receiver.edges_from(locations[receiver_index]) {
                        let Some(SyncAction::Receive(rx_channel)) = receiver_edge.sync() else {
                            continue;
                        };
                        if rx_channel != channel {
                            continue;
                        }
                        if committed {
                            let sender_committed = self.automata[sender_index].locations()
                                [locations[sender_index]]
                                .is_committed();
                            let receiver_committed = self.automata[receiver_index].locations()
                                [locations[receiver_index]]
                                .is_committed();
                            if !sender_committed && !receiver_committed {
                                continue;
                            }
                        }
                        pairs.push((sender_index, sender_edge, receiver_index, receiver_edge));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::TimedAutomatonBuilder;

    fn sender_receiver() -> Network {
        let mut sender = TimedAutomatonBuilder::new("sender");
        let x = sender.add_clock("x");
        let s0 = sender.add_location("s0");
        let s1 = sender.add_location("s1");
        sender.set_initial(s0);
        sender
            .add_edge(
                s0,
                s1,
                vec![ClockConstraint::ge(x, 1)],
                vec![x],
                Some(SyncAction::Send(0)),
            )
            .unwrap();

        let mut receiver = TimedAutomatonBuilder::new("receiver");
        let y = receiver.add_clock("y");
        let r0 = receiver.add_location("r0");
        let r1 = receiver.add_location("r1");
        receiver.set_initial(r0);
        receiver
            .add_edge(r0, r1, vec![], vec![y], Some(SyncAction::Receive(0)))
            .unwrap();
        receiver
            .add_edge(r0, r0, vec![ClockConstraint::le(y, 3)], vec![], None)
            .unwrap();

        Network::new(vec![sender.build().unwrap(), receiver.build().unwrap()]).unwrap()
    }

    #[test]
    fn composition_assigns_disjoint_clock_ranges() {
        let network = sender_receiver();
        assert_eq!(network.total_clocks(), 2);
        assert_eq!(network.clock_offset(0), 0);
        assert_eq!(network.clock_offset(1), 1);
        assert_eq!(network.initial_locations(), vec![0, 0]);
        assert_eq!(network.max_constant(), 3);
    }

    #[test]
    fn empty_network_is_rejected() {
        assert!(matches!(Network::new(vec![]), Err(TaError::EmptyNetwork)));
    }

    #[test]
    fn local_edges_exclude_synchronizing_edges() {
        let network = sender_receiver();
        let locations = network.initial_locations();
        let local: Vec<_> = network.local_edges(&locations).collect();
        // Only the receiver's self-loop is a local edge.
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].0, 1);
    }

    #[test]
    fn sync_pairs_match_send_with_receive() {
        let network = sender_receiver();
        let locations = network.initial_locations();
        let pairs = network.sync_pairs(&locations);
        assert_eq!(pairs.len(), 1);
        let (sender_index, _, receiver_index, _) = pairs[0];
        assert_eq!(sender_index, 0);
        assert_eq!(receiver_index, 1);
        // After the receiver moved to r1 no pair is enabled any more.
        let moved = vec![0, 1];
        assert!(network.sync_pairs(&moved).is_empty());
    }

    #[test]
    fn guards_and_resets_are_shifted_into_global_ids() {
        let network = sender_receiver();
        let locations = network.initial_locations();
        let pairs = network.sync_pairs(&locations);
        let (_, sender_edge, receiver_index, receiver_edge) = pairs[0];
        let guard = network.global_guard(0, sender_edge);
        assert_eq!(guard.len(), 1);
        assert_eq!(guard[0].max_clock(), Some(0));
        let resets = network.global_resets(receiver_index, receiver_edge);
        assert_eq!(resets, vec![1]);
    }

    #[test]
    fn committed_priority_filters_edges() {
        // Automaton A has a committed location with a local edge; automaton B
        // has a local edge from an ordinary location. While A is committed only
        // A's edge may fire.
        let mut a = TimedAutomatonBuilder::new("a");
        let a0 = a.add_committed_location("a0");
        let a1 = a.add_location("a1");
        a.set_initial(a0);
        a.add_edge(a0, a1, vec![], vec![], None).unwrap();

        let mut b = TimedAutomatonBuilder::new("b");
        let b0 = b.add_location("b0");
        let b1 = b.add_location("b1");
        b.set_initial(b0);
        b.add_edge(b0, b1, vec![], vec![], None).unwrap();

        let network = Network::new(vec![a.build().unwrap(), b.build().unwrap()]).unwrap();
        let locations = network.initial_locations();
        assert!(network.any_committed(&locations));
        let local: Vec<_> = network.local_edges(&locations).collect();
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].0, 0);
        // Once A left its committed location, B's edge becomes available.
        let after = vec![1, 0];
        assert!(!network.any_committed(&after));
        assert_eq!(network.local_edges(&after).count(), 1);
    }

    #[test]
    fn error_detection_over_location_vectors() {
        let mut a = TimedAutomatonBuilder::new("a");
        let ok = a.add_location("ok");
        let bad = a.add_error_location("bad");
        a.set_initial(ok);
        a.add_edge(ok, bad, vec![], vec![], None).unwrap();
        let network = Network::new(vec![a.build().unwrap()]).unwrap();
        assert!(!network.any_error(&[0]));
        assert!(network.any_error(&[1]));
    }
}
