//! The paper's motivational example (Sec. 3.1): the DC-motor position plant
//! with a switching-stable and a switching-unstable gain pair.
//!
//! Run with `cargo run --example motivational_example`.

use cps_apps::motivational;
use cps_core::{Mode, ModeSchedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stable = motivational::stable_pair()?;
    let unstable = motivational::unstable_pair()?;

    let jt = stable.settling_in_mode(Mode::TimeTriggered, 200)?;
    let je = stable.settling_in_mode(Mode::EventTriggered, 200)?;
    println!(
        "K_T settles in {:.2} s, K_E^s in {:.2} s (paper: 0.18 s and 0.68 s)",
        stable.samples_to_seconds(jt),
        stable.samples_to_seconds(je)
    );

    // The 4-wait / 4-dwell switching experiment of Fig. 2.
    let schedule = ModeSchedule::new(4, 4, 200)?.to_modes();
    let j_stable = stable.settling_of_schedule(&schedule)?;
    let j_unstable = unstable.settling_of_schedule(&schedule)?;
    println!(
        "4 ET + 4 TT samples: stable pair settles in {:.2} s, unstable pair in {:.2} s",
        stable.samples_to_seconds(j_stable),
        unstable.samples_to_seconds(j_unstable)
    );
    println!("ignoring switching stability wastes TT resource — the paper's Fig. 2/3 takeaway");
    Ok(())
}
