//! Full slot dimensioning of the paper's six-application case study:
//! first-fit mapping with the exact model-checking oracle versus the
//! conservative baseline analysis.
//!
//! Run with `cargo run --release --example slot_dimensioning`
//! (release recommended: the exact verification of four applications sharing
//! one slot explores about a million states).

use cps_apps::case_study;
use cps_baseline::Strategy;
use cps_map::{first_fit, BaselineOracle, MapExplorerEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Use the published Table 1 timing data directly (no recomputation).
    let apps = case_study::all_applications()?;
    let profiles: Vec<_> = apps
        .iter()
        .map(|a| a.paper_row().to_profile(a.application().name()))
        .collect::<Result<_, _>>()?;
    let names: Vec<&str> = profiles.iter().map(|p| p.name()).collect();

    // The mapping explorer runs the exact model checking behind a tiered
    // admission cascade; the partition is identical to plain first-fit over
    // `ModelCheckingOracle`, and the tier statistics show what each probe
    // actually cost.
    let mut engine = MapExplorerEngine::new();
    let proposed = engine.first_fit(&profiles)?;
    println!(
        "switching strategy + model checking: {} slots  {}",
        proposed.slot_count(),
        proposed.format_with_names(&names)
    );
    if let Some(stats) = proposed.tier_stats() {
        println!("  admission cascade: {stats}");
    }

    // The branch-and-bound minimizer proves the first-fit partition is
    // optimal: no single-slot packing of the case study exists. After the
    // first-fit run every search probe is answered from the memo table.
    let optimal = engine.minimize_slots(&profiles)?;
    println!(
        "provably minimal dimensioning      : {} slots  {}  ({} search nodes)",
        optimal.slot_count(),
        optimal.format_with_names(&names),
        optimal.nodes_explored()
    );

    let baseline = first_fit(
        &profiles,
        &BaselineOracle::with_strategy(Strategy::NonPreemptiveDeadlineMonotonic),
    )?;
    println!(
        "conservative baseline analysis     : {} slots  {}",
        baseline.slot_count(),
        baseline.format_with_names(&names)
    );
    println!(
        "slot saving: {:.0}% (paper reports 50% against its 4-slot baseline)",
        100.0 * proposed.saving_versus(&baseline)
    );
    Ok(())
}
