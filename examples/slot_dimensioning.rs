//! Full slot dimensioning of the paper's six-application case study:
//! first-fit mapping with the exact model-checking oracle versus the
//! conservative baseline analysis.
//!
//! Run with `cargo run --release --example slot_dimensioning`
//! (release recommended: the exact verification of four applications sharing
//! one slot explores about a million states).

use cps_apps::case_study;
use cps_baseline::Strategy;
use cps_map::{first_fit, BaselineOracle, ModelCheckingOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Use the published Table 1 timing data directly (no recomputation).
    let apps = case_study::all_applications()?;
    let profiles: Vec<_> = apps
        .iter()
        .map(|a| a.paper_row().to_profile(a.application().name()))
        .collect::<Result<_, _>>()?;
    let names: Vec<&str> = profiles.iter().map(|p| p.name()).collect();

    let proposed = first_fit(&profiles, &ModelCheckingOracle::new())?;
    println!(
        "switching strategy + model checking: {} slots  {}",
        proposed.slot_count(),
        proposed.format_with_names(&names)
    );

    let baseline = first_fit(
        &profiles,
        &BaselineOracle::with_strategy(Strategy::NonPreemptiveDeadlineMonotonic),
    )?;
    println!(
        "conservative baseline analysis     : {} slots  {}",
        baseline.slot_count(),
        baseline.format_with_names(&names)
    );
    println!(
        "slot saving: {:.0}% (paper reports 50% against its 4-slot baseline)",
        100.0 * proposed.saving_versus(&baseline)
    );
    Ok(())
}
