//! Scheduler/plant co-simulation of the paper's slot S1 scenario (Fig. 8):
//! C1, C5, C4 and C3 are disturbed simultaneously and share one TT slot.
//!
//! Run with `cargo run --release --example co_simulation`.

use cps_apps::case_study::{self, CaseStudyApp, SLOT1_MEMBERS};
use cps_sched::cosim::{CosimApp, CosimScenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let apps = case_study::all_applications()?;
    let members = SLOT1_MEMBERS;
    let cosim_apps: Vec<CosimApp> = members
        .iter()
        .map(|name| {
            let app = apps
                .iter()
                .find(|a| a.application().name() == *name)
                .expect("case-study application exists");
            Ok(CosimApp {
                application: app.application().clone(),
                profile: app.profile_with(CaseStudyApp::fast_search_options())?,
                disturbance_sample: 0,
            })
        })
        .collect::<Result<_, cps_core::CoreError>>()?;

    let scenario = CosimScenario::new(cosim_apps, 60)?;
    let result = scenario.run()?;
    for (i, name) in members.iter().enumerate() {
        println!(
            "{name}: waited {:?} samples, used {} TT samples, settled in {:.2} s (requirement {:.2} s)",
            result.schedule().traces()[i].waits,
            result.schedule().traces()[i].total_tt_samples(),
            result.settling_seconds()[i].unwrap_or(f64::NAN),
            scenario.apps()[i].profile.jstar() as f64 * 0.02,
        );
    }
    println!("all requirements met: {}", result.all_meet_requirements());
    Ok(())
}
