//! Quickstart: define one switched-control application, dimension its TT
//! resource needs, and check whether two instances can share a single slot.
//!
//! Run with `cargo run --example quickstart`.

use cps_control::{StateFeedback, StateSpace};
use cps_core::{dwell::DwellSearchOptions, AppTimingProfile, Mode, SwitchedApplication};
use cps_linalg::Vector;
use cps_verify::{SlotSharingModel, VerificationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A first-order plant sampled at 20 ms with a fast (TT) and a slow
    //    (ET, one-sample delay) controller.
    let plant = StateSpace::from_slices(&[&[0.95]], &[0.1], &[1.0])?;
    let app = SwitchedApplication::builder("demo")
        .plant(plant)
        .fast_gain(StateFeedback::from_slice(&[8.0]))
        .slow_gain(Vector::from_slice(&[1.0, 0.2]))
        .sampling_period(0.02)
        .settling_threshold(0.02)
        .disturbance_state(Vector::from_slice(&[1.0]))
        .build()?;

    // 2. How fast does each mode reject a disturbance?
    let jt = app.settling_in_mode(Mode::TimeTriggered, 300)?;
    let je = app.settling_in_mode(Mode::EventTriggered, 300)?;
    println!("dedicated TT slot settles in {jt} samples, pure ET in {je} samples");

    // 3. Dimension the minimum TT usage for a requirement of 15 samples.
    let profile = AppTimingProfile::from_application(&app, 15, 40, DwellSearchOptions::default())?;
    println!(
        "requirement 15 samples: may wait up to {} samples, needs {}..={} TT samples once granted",
        profile.max_wait(),
        profile.t_dw_min(0).unwrap_or(0),
        profile.t_dw_plus(0).unwrap_or(0),
    );

    // 4. Can two such applications share one TT slot in every scenario?
    let model = SlotSharingModel::new(vec![profile.clone(), profile])?;
    let outcome = model.verify(&VerificationConfig::default())?;
    println!(
        "two instances sharing one slot: schedulable = {} ({} states explored)",
        outcome.schedulable(),
        outcome.states_explored()
    );
    Ok(())
}
