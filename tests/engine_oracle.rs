//! Oracle-equivalence tests: the prefix-sharing dwell engine must reproduce
//! the naive exhaustive search **exactly** — the same `Option<usize>` in
//! every settling cell — on the paper's case study and on randomized plants.

use cps_apps::case_study;
use cps_control::{StateFeedback, StateSpace};
use cps_core::dwell::{self, reference, DwellSearchOptions};
use cps_core::SwitchedApplication;
use cps_linalg::{eigen, Matrix, Vector};

#[test]
fn case_study_dwell_tables_match_reference_exactly() {
    let options = DwellSearchOptions {
        horizon: 200,
        max_dwell: 15,
        max_wait: 30,
    };
    for app in case_study::all_applications().unwrap() {
        let a = app.application();
        let fast = dwell::compute_dwell_table(a, app.jstar(), options).unwrap();
        let naive = reference::compute_dwell_table(a, app.jstar(), options).unwrap();
        assert_eq!(
            fast,
            naive,
            "{}: dwell table diverges from oracle",
            a.name()
        );
    }
}

#[test]
fn case_study_settling_surfaces_match_reference_exactly() {
    for app in case_study::all_applications().unwrap() {
        let a = app.application();
        let fast = dwell::settling_surface(a, 15, 10, 150).unwrap();
        let naive = reference::settling_surface(a, 15, 10, 150).unwrap();
        assert_eq!(fast, naive, "{}: surface diverges from oracle", a.name());
    }
}

#[test]
fn forced_thread_counts_agree_with_the_oracle() {
    let app = case_study::c1().unwrap();
    let a = app.application();
    let options = DwellSearchOptions {
        horizon: 180,
        max_dwell: 12,
        max_wait: 24,
    };
    let naive = reference::compute_dwell_table(a, app.jstar(), options).unwrap();
    for threads in [1, 2, 5] {
        let fast =
            dwell::compute_dwell_table_with_threads(a, app.jstar(), options, threads).unwrap();
        assert_eq!(fast, naive, "table diverges at {threads} threads");
        let fast_surface = dwell::settling_surface_with_threads(a, 20, 10, 180, threads).unwrap();
        let naive_surface = reference::settling_surface(a, 20, 10, 180).unwrap();
        assert_eq!(
            fast_surface, naive_surface,
            "surface diverges at {threads} threads"
        );
    }
}

/// Deterministic xorshift generator for the randomized-plant sweep.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[-1, 1)`.
    fn symmetric(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }
}

/// Draws a random stable 2-state SISO plant with a random gain pair, or
/// `None` when the draw does not yield Schur-stable closed loops.
fn random_application(rng: &mut Lcg, index: usize) -> Option<SwitchedApplication> {
    // Random 2x2 state matrix scaled to spectral radius <= 0.9.
    let mut phi = Matrix::from_vec(
        2,
        2,
        vec![
            rng.symmetric(),
            rng.symmetric(),
            rng.symmetric(),
            rng.symmetric(),
        ],
    )
    .unwrap();
    let rho = eigen::spectral_radius(&phi).ok()?;
    if rho >= 0.9 {
        phi = phi.scale(0.85 / (rho + 1e-9));
    }
    // Input vector bounded away from zero so the gains act on the plant.
    let gamma: Vec<f64> = (0..2)
        .map(|_| {
            let g = rng.symmetric();
            g + 0.2 * g.signum()
        })
        .collect();
    let phi_rows: Vec<Vec<f64>> = (0..2).map(|i| vec![phi[(i, 0)], phi[(i, 1)]]).collect();
    let plant =
        StateSpace::from_slices(&[&phi_rows[0][..], &phi_rows[1][..]], &gamma, &[1.0, 0.0]).ok()?;
    let kt = [0.4 * rng.symmetric(), 0.4 * rng.symmetric()];
    let ke = [
        0.3 * rng.symmetric(),
        0.3 * rng.symmetric(),
        0.3 * rng.symmetric(),
    ];
    let app = SwitchedApplication::builder(format!("rand{index}"))
        .plant(plant)
        .fast_gain(StateFeedback::from_slice(&kt))
        .slow_gain(Vector::from_slice(&ke))
        .sampling_period(0.02)
        .settling_threshold(0.02)
        .disturbance_state(Vector::from_slice(&[1.0, 0.0]))
        .build()
        .ok()?;
    // Both closed loops must be Schur stable for the search to be meaningful.
    let tt_stable = eigen::eigenvalues(app.tt_closed_loop())
        .ok()?
        .is_schur_stable();
    let et_stable = eigen::eigenvalues(app.et_closed_loop())
        .ok()?
        .is_schur_stable();
    (tt_stable && et_stable).then_some(app)
}

#[test]
fn randomized_stable_plants_match_reference_exactly() {
    let mut rng = Lcg(0x5EED_CAFE_F00D_D00D);
    let mut accepted = 0;
    let mut settled_cells = 0;
    let mut draws = 0;
    while accepted < 15 {
        draws += 1;
        assert!(draws < 500, "random plant generation failed to converge");
        let Some(app) = random_application(&mut rng, draws) else {
            continue;
        };
        accepted += 1;
        let fast = dwell::settling_surface(&app, 8, 8, 120).unwrap();
        let naive = reference::settling_surface(&app, 8, 8, 120).unwrap();
        assert_eq!(fast, naive, "{}: surface diverges from oracle", draws);
        settled_cells += fast.iter().count();
    }
    // The sweep must actually exercise settled schedules, not just
    // all-`None` surfaces.
    assert!(
        settled_cells > 100,
        "only {settled_cells} settled cells across the sweep"
    );
}
