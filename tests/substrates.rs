//! Integration tests across the substrates: control design, FlexRay timing
//! abstraction, and the two verification engines.

use cps_control::place;
use cps_flexray::{wcrt, BusConfig, DynamicSegment, Frame, FrameKind};
use cps_linalg::{eigen, Matrix};
use cps_ta::model::{blocking_bound_is_safe, BlockingModelParams};

#[test]
fn pole_placement_designs_a_gain_for_the_paper_plant() {
    // Design an alternative TT gain for the motivational plant and check the
    // closed loop realizes the requested poles.
    let plant = cps_apps::motivational::dc_motor_plant().unwrap();
    let poles = [0.1, 0.2, 0.3];
    let gain = place::place_real_poles(plant.state_matrix(), plant.input_matrix(), &poles).unwrap();
    let k_row = Matrix::row_from_vector(&gain);
    let closed = plant
        .state_matrix()
        .sub(&plant.input_matrix().mul(&k_row).unwrap())
        .unwrap();
    let eig = eigen::eigenvalues(&closed).unwrap();
    for target in poles {
        assert!(eig
            .values()
            .iter()
            .any(|z| (z.re - target).abs() < 1e-6 && z.im.abs() < 1e-6));
    }
}

#[test]
fn flexray_configuration_supports_the_one_sample_delay_abstraction() {
    // The paper's ET mode provisions one sample of delay; the bus
    // configuration used throughout the workspace indeed bounds every dynamic
    // frame's worst-case response below the 20 ms sampling period.
    let config = BusConfig::paper_default();
    let mut segment = DynamicSegment::new(&config);
    for (id, priority) in [(10, 1), (20, 2), (30, 3), (40, 4), (50, 5), (60, 6)] {
        segment
            .register(Frame::new(
                id,
                FrameKind::Dynamic {
                    priority,
                    minislots: 4,
                },
            ))
            .unwrap();
    }
    assert!(wcrt::one_sample_delay_is_sound(&config, &segment, 0.02).unwrap());
}

#[test]
fn zone_based_and_arithmetic_blocking_checks_agree() {
    // The conservative TA model (cps-ta) must agree with plain arithmetic on
    // the blocking-vs-deadline question for the case-study deadlines.
    for (deadline, blocking) in [(11, 9), (12, 10), (12, 19), (15, 10), (13, 30)] {
        let params = BlockingModelParams {
            deadline,
            dwell: 5,
            min_inter_arrival: 25,
            blocking,
        };
        assert_eq!(
            blocking_bound_is_safe(params).unwrap(),
            blocking <= deadline,
            "deadline {deadline}, blocking {blocking}"
        );
    }
}
