//! Integration tests: verification verdicts are consistent with concrete
//! scheduling and co-simulation.

use cps_apps::case_study;
use cps_core::AppTimingProfile;
use cps_sched::SlotScheduler;
use cps_verify::{SlotSharingModel, VerificationConfig};

fn published(names: &[&str]) -> Vec<AppTimingProfile> {
    case_study::all_applications()
        .unwrap()
        .iter()
        .filter(|a| names.contains(&a.application().name()))
        .map(|a| a.paper_row().to_profile(a.application().name()).unwrap())
        .collect()
}

#[test]
fn slot2_partition_is_verified_and_schedules_concretely() {
    // {C6, C2} is the paper's second slot: the model checker accepts it and a
    // concrete worst-case scenario (simultaneous disturbances) meets every
    // deadline under the laxity scheduler.
    let profiles = published(&["C2", "C6"]);
    let model = SlotSharingModel::new(profiles.clone()).unwrap();
    let outcome = model.verify(&VerificationConfig::default()).unwrap();
    assert!(outcome.schedulable());

    let scheduler = SlotScheduler::new(profiles).unwrap();
    let schedule = scheduler.schedule(&[vec![0], vec![0]], 80).unwrap();
    assert!(schedule.all_deadlines_met());
}

#[test]
fn unschedulable_verdicts_come_with_replayable_witnesses() {
    // Adding C6 to {C1, C5, C4} breaks the slot (this is why the paper opens
    // a second slot). The witness scenario, replayed through the concrete
    // scheduler, indeed misses a deadline.
    let profiles = published(&["C1", "C5", "C4", "C6"]);
    let model = SlotSharingModel::new(profiles.clone()).unwrap();
    let outcome = model.verify(&VerificationConfig::default()).unwrap();
    assert!(!outcome.schedulable());

    let witness = outcome.witness().expect("counterexample available");
    let disturbances = witness.disturbance_times(profiles.len());
    let horizon = 1
        + witness.missed_at_sample()
        + profiles
            .iter()
            .map(|p| p.min_inter_arrival())
            .max()
            .unwrap();
    let scheduler = SlotScheduler::new(profiles).unwrap();
    let schedule = scheduler.schedule(&disturbances, horizon).unwrap();
    assert!(!schedule.all_deadlines_met());
}

#[test]
fn three_applications_on_one_slot_verify_quickly() {
    let profiles = published(&["C1", "C5", "C4"]);
    let model = SlotSharingModel::new(profiles).unwrap();
    let outcome = model.verify(&VerificationConfig::default()).unwrap();
    assert!(outcome.schedulable());
    assert!(outcome.states_explored() < 100_000);
}
