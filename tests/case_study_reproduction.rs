//! Integration tests: the case-study reproduction end to end, from plant
//! models to dwell tables to slot dimensioning.

use cps_apps::case_study::{self, CaseStudyApp};
use cps_baseline::Strategy;
use cps_core::Mode;
use cps_map::{first_fit, BaselineOracle, MapExplorerEngine};

#[test]
fn table1_settling_times_match_for_c1_and_c6() {
    for (name, expected_jt, expected_je) in [("C1", 9, 35), ("C6", 11, 41)] {
        let app = case_study::all_applications()
            .unwrap()
            .into_iter()
            .find(|a| a.application().name() == name)
            .unwrap();
        let jt = app
            .application()
            .settling_in_mode(Mode::TimeTriggered, 600)
            .unwrap();
        let je = app
            .application()
            .settling_in_mode(Mode::EventTriggered, 600)
            .unwrap();
        assert_eq!(jt, expected_jt, "{name} J_T");
        assert_eq!(je, expected_je, "{name} J_E");
    }
}

#[test]
fn c1_dwell_table_reproduces_the_published_arrays() {
    let c1 = case_study::c1().unwrap();
    let profile = c1
        .profile_with(CaseStudyApp::fast_search_options())
        .unwrap();
    assert_eq!(profile.max_wait(), c1.paper_row().t_w_max);
    assert_eq!(
        profile.dwell_table().t_dw_min_array(),
        &c1.paper_row().t_dw_min[..]
    );
    assert_eq!(
        profile.dwell_table().t_dw_plus_array(),
        &c1.paper_row().t_dw_plus[..]
    );
}

#[test]
fn baseline_mapping_needs_more_slots_than_the_paper_result() {
    // The published Table 1 rows feed the conservative baseline mapping; it
    // needs at least 3 slots where the paper's strategy needs 2.
    let profiles: Vec<_> = case_study::all_applications()
        .unwrap()
        .iter()
        .map(|a| a.paper_row().to_profile(a.application().name()).unwrap())
        .collect();
    let baseline = first_fit(
        &profiles,
        &BaselineOracle::with_strategy(Strategy::NonPreemptiveDeadlineMonotonic),
    )
    .unwrap();
    assert!(baseline.slot_count() >= 3);
}

#[test]
fn parallel_minimize_reproduces_the_published_partition() {
    // The paper's two-slot partition {C1,C5,C4,C3} {C6,C2} must come out of
    // the parallel branch and bound exactly as it does serially, at every
    // pool width.
    let profiles: Vec<_> = case_study::all_applications()
        .unwrap()
        .iter()
        .map(|a| a.paper_row().to_profile(a.application().name()).unwrap())
        .collect();
    let published: &[Vec<usize>] = &[vec![0, 4, 3, 2], vec![5, 1]];
    for threads in [1, 2, 4, 8] {
        let mut engine = MapExplorerEngine::new().with_pool(cps_par::Pool::with_threads(threads));
        let report = engine.minimize_slots(&profiles).unwrap();
        assert_eq!(report.slots(), published, "threads={threads}");
        assert_eq!(report.slot_count(), 2);
    }
}

#[test]
fn bounded_memo_reproduces_the_published_partition_bit_identically() {
    // The slot minimizer must reproduce the paper's two-slot partition
    // {C1,C5,C4,C3} {C6,C2} — slot members in placement order — whatever the
    // verdict memo behind the admission cascade is: the default bounded
    // transposition table, a pathologically tiny one that is forced to evict
    // verdicts mid-search, and the unbounded hash map. Evictions may cost
    // recomputation, never a different verdict.
    let profiles: Vec<_> = case_study::all_applications()
        .unwrap()
        .iter()
        .map(|a| a.paper_row().to_profile(a.application().name()).unwrap())
        .collect();
    let published: &[Vec<usize>] = &[vec![0, 4, 3, 2], vec![5, 1]];

    let mut bounded = MapExplorerEngine::new();
    let mut tiny = MapExplorerEngine::new().with_memo_capacity(1);
    let mut unbounded = MapExplorerEngine::new().with_unbounded_memo();

    let from_bounded = bounded.minimize_slots(&profiles).unwrap();
    let from_tiny = tiny.minimize_slots(&profiles).unwrap();
    let from_unbounded = unbounded.minimize_slots(&profiles).unwrap();

    assert_eq!(from_bounded.slots(), published);
    assert_eq!(from_tiny.slots(), published);
    assert_eq!(from_unbounded.slots(), published);
    assert_eq!(
        unbounded.stats().tt_evictions,
        0,
        "the unbounded memo never evicts"
    );
    assert!(
        tiny.stats().tt_evictions > 0,
        "a two-entry memo must evict during the lattice search"
    );
}
